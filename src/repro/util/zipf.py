"""Zipf-distributed sampling used by the corpus and workload generators.

Term frequencies in natural-language collections and query popularities in
real query logs are both well modelled by power laws; AlvisP2P's companion
papers (HDK, ICDE'07; QDI, SIGIR'07) rely on exactly these properties, so the
synthetic substitutes must reproduce them.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import Iterator, List, Sequence

__all__ = ["zipf_weights", "ZipfSampler"]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Return normalized Zipf weights ``w_i ~ 1 / (i+1)^exponent``.

    >>> ws = zipf_weights(3, 1.0)
    >>> round(sum(ws), 10)
    1.0
    >>> ws[0] > ws[1] > ws[2]
    True
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to a power law.

    Sampling is O(log n) via binary search over the cumulative distribution.
    The sampler owns no RNG: callers pass a :class:`random.Random`, keeping
    stream ownership explicit.
    """

    def __init__(self, n: int, exponent: float = 1.0):
        self._weights = zipf_weights(n, exponent)
        self._cdf = list(itertools.accumulate(self._weights))
        # Guard against floating-point drift: force the last CDF entry to 1.
        self._cdf[-1] = 1.0
        self.n = n
        self.exponent = exponent

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent ranks."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.sample(rng) for _ in range(count)]

    def sample_distinct(self, rng: random.Random, count: int,
                        max_attempts_factor: int = 50) -> List[int]:
        """Draw ``count`` *distinct* ranks (rejection sampling).

        Falls back to filling with the lowest-probability unused ranks if
        rejection sampling stalls, so the call always succeeds for
        ``count <= n``.
        """
        if count > self.n:
            raise ValueError(
                f"cannot draw {count} distinct ranks from support of {self.n}")
        seen: set = set()
        result: List[int] = []
        attempts = 0
        limit = max(1, count) * max_attempts_factor
        while len(result) < count and attempts < limit:
            rank = self.sample(rng)
            attempts += 1
            if rank not in seen:
                seen.add(rank)
                result.append(rank)
        if len(result) < count:
            for rank in range(self.n - 1, -1, -1):
                if rank not in seen:
                    seen.add(rank)
                    result.append(rank)
                    if len(result) == count:
                        break
        return result

    def probability(self, rank: int) -> float:
        """Return the probability mass of ``rank``."""
        return self._weights[rank]

    def stream(self, rng: random.Random) -> Iterator[int]:
        """Yield an unbounded stream of samples."""
        while True:
            yield self.sample(rng)

    def expected_frequency(self, rank: int, draws: int) -> float:
        """Expected number of occurrences of ``rank`` over ``draws`` draws."""
        return self.probability(rank) * draws

    @staticmethod
    def fit_exponent(frequencies: Sequence[int]) -> float:
        """Crude MLE-style estimate of the Zipf exponent from rank frequencies.

        Uses a log-log least-squares fit over the sorted frequencies; good
        enough for sanity-checking generated corpora in tests.
        """
        ranked = sorted((f for f in frequencies if f > 0), reverse=True)
        if len(ranked) < 2:
            raise ValueError("need at least two non-zero frequencies")
        xs = [math.log(rank) for rank in range(1, len(ranked) + 1)]
        ys = [math.log(freq) for freq in ranked]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var = sum((x - mean_x) ** 2 for x in xs)
        slope = cov / var
        return -slope

"""Shared utilities: seeded randomness, Zipf sampling, summary statistics.

Everything in this package is deterministic given explicit seeds; no module
here reads the wall clock or global random state.
"""

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    RunningStats,
    gini_coefficient,
    max_over_mean,
    percentile,
    summarize,
)
from repro.util.zipf import ZipfSampler, zipf_weights

__all__ = [
    "derive_seed",
    "make_rng",
    "RunningStats",
    "gini_coefficient",
    "max_over_mean",
    "percentile",
    "summarize",
    "ZipfSampler",
    "zipf_weights",
]

"""Summary statistics for experiment reporting.

The evaluation harness reports distributions (lookup hops, per-peer loads,
per-query bytes); these helpers are dependency-free so that the core library
itself does not require numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "percentile",
    "gini_coefficient",
    "max_over_mean",
    "summarize",
    "RunningStats",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) with linear interpolation.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    >>> percentile([5], 99)
    5
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly even).

    Used for the load-balancing experiment (E6): the paper claims acceptable
    storage and message load balance across peers.

    >>> gini_coefficient([1, 1, 1, 1])
    0.0
    >>> gini_coefficient([0, 0, 0, 1]) > 0.7
    True
    """
    if not values:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += index * value
    gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    # Clamp tiny negative values from floating-point cancellation.
    return min(1.0, max(0.0, gini))


def max_over_mean(values: Sequence[float]) -> float:
    """Ratio of the maximum to the mean; 1.0 means perfectly balanced."""
    if not values:
        raise ValueError("max_over_mean of empty sequence")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return max(values) / mean


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return a dict of common summary statistics for reporting tables."""
    if not values:
        raise ValueError("summarize of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return {
        "n": float(n),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "max": ordered[-1],
    }


@dataclass
class RunningStats:
    """Single-pass mean/variance accumulator (Welford's algorithm).

    Useful when an experiment streams millions of samples and storing them
    all would be wasteful.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add_all(self, values: Iterable[float]) -> None:
        """Fold an iterable of samples."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        if other.count == 0:
            merged = RunningStats()
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged._min = self._min
            merged._max = self._max
            return merged
        if self.count == 0:
            return other.merge(self)
        merged = RunningStats()
        merged.count = self.count + other.count
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (self._m2 + other._m2 +
                      delta * delta * self.count * other.count / merged.count)
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

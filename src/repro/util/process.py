"""Process-level resource accounting for benchmarks and monitoring.

The scale-out benchmarks (E13-E15, the 100k-peer sweep) report peak
resident set size next to their throughput numbers; this module holds
the one portable-enough way to read it.
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_kb"]


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS; normalize
    to KB.  Returns 0 on platforms without :mod:`resource` (Windows),
    so callers can stamp it unconditionally.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS only
        peak //= 1024
    return int(peak)

"""Optional numpy acceleration, with an environment kill-switch.

The repo must run (and produce byte-identical results) without numpy:
the vectorized owner-side BM25 path is an *acceleration* of the scalar
reference implementation, never a behavioural fork.  Import ``np`` from
here instead of importing numpy directly:

* ``np`` is the numpy module when it is importable, else ``None``;
* setting ``REPRO_PURE_PYTHON=1`` forces ``np = None`` even when numpy
  is installed — how CI exercises the pure-Python fallback, and how the
  legacy benchmark profile pins the unoptimised scoring path.

Callers must keep a scalar fallback behind ``if np is None``.
"""

from __future__ import annotations

import os

__all__ = ["np", "HAVE_NUMPY"]

np = None
if os.environ.get("REPRO_PURE_PYTHON", "").lower() not in ("1", "true",
                                                           "yes"):
    try:  # pragma: no cover - exercised via the no-numpy CI leg
        import numpy as np  # type: ignore[no-redef]
    except ImportError:
        np = None

HAVE_NUMPY = np is not None

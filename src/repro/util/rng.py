"""Deterministic random-number helpers.

All stochastic components in the reproduction accept an integer seed and
construct their own :class:`random.Random` instance.  Sub-components derive
independent child seeds with :func:`derive_seed` so that, e.g., the corpus
generator and the query generator never share a stream even when the user
passes the same top-level seed.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``seed`` and a label path.

    The derivation hashes the parent seed together with the labels, so
    distinct label paths yield statistically independent streams while
    remaining fully reproducible.

    >>> derive_seed(42, "corpus") == derive_seed(42, "corpus")
    True
    >>> derive_seed(42, "corpus") != derive_seed(42, "queries")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def make_rng(seed: int, *labels: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded from a label path."""
    if labels:
        seed = derive_seed(seed, *labels)
    return random.Random(seed)

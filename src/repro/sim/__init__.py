"""Discrete-event simulation kernel.

The AlvisP2P paper demonstrates a live Internet deployment; this package is
the laptop-scale substitute.  It provides a virtual clock, an event queue and
a metrics registry, on top of which :mod:`repro.net` builds a point-to-point
transport and :mod:`repro.dht` a structured overlay.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.procs import Future, Proc, all_of

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Simulator",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Future",
    "Proc",
    "all_of",
]

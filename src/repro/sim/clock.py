"""Virtual time.

All timestamps in the simulation are floats in abstract "virtual seconds";
nothing ever reads the wall clock, which keeps runs reproducible.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically advancing virtual clock owned by the simulator."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start time must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Advance the clock to ``timestamp``.

        Raises :class:`ValueError` on attempts to move backwards, which
        would indicate an event-queue ordering bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards: {timestamp} < {self._now}")
        self._now = timestamp

    def advance_by(self, delta: float) -> None:
        """Advance the clock by a non-negative ``delta``."""
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        self._now += delta

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"

"""Lightweight processes ("procs") on the discrete-event kernel.

Multi-step protocols written directly against the event queue dissolve
into callback chains; a proc is a plain generator driven by the
simulator instead, so a routed lookup or a whole query reads linearly:

    def ping(simulator, transport):
        outcome = yield transport.request_async(message)
        yield 0.5                        # virtual-time sleep
        return outcome.rtt

    proc = simulator.spawn(ping(simulator, transport))
    simulator.run()
    assert proc.done

A proc may ``yield``:

* a number — sleep that many virtual seconds;
* ``None`` — yield control, resuming at the same virtual time (after
  already-queued same-time events);
* a :class:`Future` — resume with the future's value once resolved;
* another :class:`Proc` — resume with that proc's result when it
  completes;

and ``return`` a value, which becomes :attr:`Proc.result`.  Nested
generators compose with ``yield from``.  Completion callbacks
(:meth:`Proc.add_done_callback`) let non-proc code observe the end of a
process, mirroring :meth:`Future.add_done_callback`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (events imports us lazily)
    from repro.sim.events import Simulator

__all__ = ["Future", "Proc", "all_of"]


class Future:
    """A single-assignment value that callbacks (and procs) can await."""

    __slots__ = ("done", "value", "_callbacks")

    def __init__(self):
        self.done = False
        self.value: Any = None
        self._callbacks: List[Callable[["Future"], None]] = []

    def resolve(self, value: Any = None) -> None:
        """Set the value and run the registered callbacks (once, in order)."""
        if self.done:
            raise RuntimeError("future already resolved")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` on resolution (immediately if resolved)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = f"value={self.value!r}" if self.done else "pending"
        return f"Future({state})"


def all_of(futures: Iterable[Future]) -> Future:
    """A future resolving with the values of ``futures``, in their order.

    Resolves immediately (with ``[]``) when the iterable is empty — a
    frontier round with nothing in flight must not stall its proc.
    """
    pending = list(futures)
    combined = Future()
    if not pending:
        combined.resolve([])
        return combined
    remaining = [len(pending)]

    def on_done(_future: Future) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.resolve([future.value for future in pending])

    for future in pending:
        future.add_done_callback(on_done)
    return combined


class Proc:
    """One generator-driven process, stepped by the event kernel.

    The first step is scheduled at spawn time (zero delay), so a proc
    never runs re-entrantly inside the spawning call; everything after
    that is driven by the awaited futures/sleeps.
    """

    def __init__(self, simulator: "Simulator",
                 generator: Generator[Any, Any, Any],
                 name: Optional[str] = None):
        self.simulator = simulator
        self.name = name
        self.done = False
        self.result: Any = None
        self._generator = generator
        self._callbacks: List[Callable[["Proc"], None]] = []
        simulator.schedule(0.0, lambda: self._advance(None))

    # ------------------------------------------------------------------

    def add_done_callback(self, callback: Callable[["Proc"], None]) -> None:
        """Run ``callback(self)`` when the proc completes."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    # ------------------------------------------------------------------

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if isinstance(yielded, Future):
            yielded.add_done_callback(
                lambda future: self._advance(future.value))
        elif isinstance(yielded, Proc):
            yielded.add_done_callback(
                lambda proc: self._advance(proc.result))
        elif yielded is None:
            self.simulator.schedule(0.0, lambda: self._advance(None))
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(
                    f"proc {self.name or self._generator!r} slept for "
                    f"negative time {yielded}")
            self.simulator.schedule(float(yielded),
                                    lambda: self._advance(None))
        else:
            raise TypeError(
                f"proc {self.name or self._generator!r} yielded "
                f"unsupported value {yielded!r} (expected a Future, a "
                "Proc, a non-negative number, or None)")

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        label = self.name or "proc"
        state = f"result={self.result!r}" if self.done else "running"
        return f"Proc({label}, {state})"

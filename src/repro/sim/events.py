"""Event queue and simulator driver.

A classic discrete-event loop: events are (time, sequence, callback) tuples
ordered by time with a FIFO tiebreak, so same-timestamp events run in
scheduling order and the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.procs import Proc

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering compares ``(time, sequence)`` only; the callback itself is
    excluded from comparison.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the owning queue so it can keep a live non-cancelled count
    #: without scanning the heap; cleared once the event is popped or
    #: its cancellation is observed.
    _on_cancel: Optional[Callable[[], None]] = field(default=None,
                                                     compare=False,
                                                     repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None


class EventQueue:
    """Min-heap of :class:`Event` objects.

    Keeps a live non-cancelled counter so ``len``/``bool`` — called from
    hot simulation loops — are O(1) instead of a full heap scan.
    """

    def __init__(self):
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        event = Event(time=time, sequence=next(self._sequence),
                      callback=callback)
        event._on_cancel = self._note_cancel
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def _note_cancel(self) -> None:
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                # Detach the cancel hook: cancelling an already-executed
                # event must not corrupt the live counter.
                event._on_cancel = None
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Drives the virtual clock through the event queue.

    The simulator is intentionally tiny: components schedule callbacks via
    :meth:`schedule` / :meth:`schedule_at` and the experiment driver calls
    :meth:`run` (to exhaustion) or :meth:`run_until`.
    """

    def __init__(self, start_time: float = 0.0):
        self.clock = VirtualClock(start_time)
        self.queue = EventQueue()
        self.metrics = MetricsRegistry()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.queue.push(self.clock.now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.clock.now}")
        return self.queue.push(time, callback)

    def spawn(self, generator: Generator[Any, Any, Any],
              name: Optional[str] = None) -> "Proc":
        """Start a generator-driven process (see :mod:`repro.sim.procs`).

        The proc's first step runs as a zero-delay event, so spawning is
        never re-entrant; drive the simulator to make progress.
        """
        from repro.sim.procs import Proc
        return Proc(self, generator, name=name)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        processed = 0
        while max_events is None or processed < max_events:
            event = self.queue.pop()
            if event is None:
                break
            self.clock.advance_to(event.time)
            event.callback()
            processed += 1
            self._events_processed += 1
        return processed

    def run_until(self, end_time: float) -> int:
        """Run events with ``time <= end_time``; park the clock at the end.

        Returns the number of events processed by this call.
        """
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            event = self.queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            event.callback()
            processed += 1
            self._events_processed += 1
        if end_time > self.clock.now:
            self.clock.advance_to(end_time)
        return processed

"""Event queue and simulator driver.

A classic discrete-event loop: events are (time, sequence, callback)
entries ordered by time with a FIFO tiebreak, so same-timestamp events
run in scheduling order and the simulation is fully deterministic.

The kernel is the innermost loop of every benchmark, so the default
:class:`Event`/:class:`EventQueue` pair is written for raw speed:

* ``Event`` is a ``__slots__`` class with a hand-rolled ``__lt__`` over
  the packed ``(time, sequence)`` pair — no dataclass tuple comparison,
  no per-event ``__dict__``, no bound-method cancel hook.
* Lazy deletion of cancelled events lives in exactly one place
  (:meth:`EventQueue._purge_cancelled_head`), shared by ``pop`` and
  ``peek_time``; cancel bookkeeping is a single back-pointer write.
* ``push_many``/``pop_batch`` amortise heap maintenance for bulk
  scheduling, and :class:`Simulator` runs a fast inlined loop (local
  heap aliases, direct clock writes) when driving the default queue.

The previous dataclass-based implementation is preserved verbatim as
:class:`LegacyEvent`/:class:`LegacyEventQueue` so benchmarks can A/B the
optimised kernel against the unoptimised one (``kernel_profile`` on
:class:`repro.core.network.AlvisNetwork`).
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import (Any, Callable, Generator, Iterable, List, Optional,
                    Tuple, TYPE_CHECKING)

from repro.sim.clock import VirtualClock
from repro.sim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.procs import Proc

__all__ = ["Event", "EventQueue", "Simulator",
           "LegacyEvent", "LegacyEventQueue"]


class Event:
    """A scheduled callback.

    Ordering compares the packed ``(time, sequence)`` pair only; the
    callback is excluded.  ``_queue`` is a back-pointer to the owning
    queue while the event sits on its heap — it is how ``cancel``
    maintains the queue's live counter in O(1) without a per-event
    closure — and is cleared once the event pops (so cancelling an
    already-executed event is a no-op that cannot corrupt the counter).
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "_queue")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[[], None],
                 queue: Optional["EventQueue"] = None):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence <= other.sequence

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            self._queue = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return (f"Event(time={self.time!r}, sequence={self.sequence}, "
                f"{state})")


class EventQueue:
    """Min-heap of :class:`Event` objects.

    Keeps a live non-cancelled counter so ``len``/``bool`` — called from
    hot simulation loops — are O(1) instead of a full heap scan.
    Cancelled events stay on the heap (lazy deletion) and are purged in
    one shared code path when they reach the head.
    """

    __slots__ = ("_heap", "_sequence", "_live")

    def __init__(self):
        self._heap: List[Event] = []
        self._sequence = 0
        self._live = 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, callback, self)
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def push_many(self, entries: Iterable[Tuple[float, Callable[[], None]]]
                  ) -> List[Event]:
        """Bulk-schedule ``(time, callback)`` pairs; returns the handles.

        Sequence numbers are assigned in iteration order, so same-time
        entries keep FIFO semantics exactly as repeated ``push`` calls
        would.  When the batch is large relative to the heap the whole
        heap is re-heapified in O(n + k) instead of k * O(log n) pushes.
        """
        sequence = self._sequence
        queue_ref = self
        events = [Event(time, sequence + offset, callback, queue_ref)
                  for offset, (time, callback) in enumerate(entries)]
        self._sequence = sequence + len(events)
        self._live += len(events)
        heap = self._heap
        if len(events) * 4 >= len(heap):
            heap.extend(events)
            heapq.heapify(heap)
        else:
            for event in events:
                heapq.heappush(heap, event)
        return events

    def _purge_cancelled_head(self) -> None:
        """Drop cancelled events from the heap head (the one lazy-deletion
        path, shared by ``pop`` and ``peek_time``)."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        self._purge_cancelled_head()
        heap = self._heap
        if not heap:
            return None
        event = heapq.heappop(heap)
        # Detach the queue back-pointer: cancelling an already-executed
        # event must not corrupt the live counter.
        event._queue = None
        self._live -= 1
        return event

    def pop_batch(self, max_count: int) -> List[Event]:
        """Pop up to ``max_count`` live events in time order."""
        events: List[Event] = []
        heap = self._heap
        heappop = heapq.heappop
        while heap and len(events) < max_count:
            event = heappop(heap)
            if event.cancelled:
                continue
            event._queue = None
            events.append(event)
        self._live -= len(events)
        return events

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without popping."""
        self._purge_cancelled_head()
        heap = self._heap
        if not heap:
            return None
        return heap[0].time

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


# ----------------------------------------------------------------------
# Legacy kernel (pre-optimisation), kept for A/B benchmarking.
# ----------------------------------------------------------------------


@dataclass(order=True)
class LegacyEvent:  # repro-lint: disable=RPL040 (pre-optimisation kernel preserved verbatim for A/B benchmarks; py3.9 dataclasses cannot take slots=True)
    """The pre-optimisation dataclass event (kept for A/B benchmarks).

    Ordering compares ``(time, sequence)`` only; the callback itself is
    excluded from comparison.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the owning queue so it can keep a live non-cancelled count
    #: without scanning the heap; cleared once the event is popped or
    #: its cancellation is observed.
    _on_cancel: Optional[Callable[[], None]] = field(default=None,
                                                     compare=False,
                                                     repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None


class LegacyEventQueue:  # repro-lint: disable=RPL040 (pre-optimisation kernel preserved verbatim for A/B benchmarks)
    """The pre-optimisation event queue (kept for A/B benchmarks).

    Same public interface as :class:`EventQueue`; the simulator falls
    back to its generic (method-dispatch) run loop when driving it, so
    benchmarking against this queue measures the unoptimised kernel.
    """

    def __init__(self):
        self._heap: List[LegacyEvent] = []
        self._sequence = itertools.count()
        self._live = 0

    def push(self, time: float,
             callback: Callable[[], None]) -> LegacyEvent:
        """Schedule ``callback`` at ``time`` and return its handle."""
        event = LegacyEvent(time=time, sequence=next(self._sequence),
                            callback=callback)
        event._on_cancel = self._note_cancel
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def push_many(self, entries: Iterable[Tuple[float, Callable[[], None]]]
                  ) -> List[LegacyEvent]:
        """Bulk push (one heappush per entry — no batching here)."""
        return [self.push(time, callback) for time, callback in entries]

    def _note_cancel(self) -> None:
        self._live -= 1

    def pop(self) -> Optional[LegacyEvent]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._on_cancel = None
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Drives the virtual clock through the event queue.

    The simulator is intentionally tiny: components schedule callbacks via
    :meth:`schedule` / :meth:`schedule_at` and the experiment driver calls
    :meth:`run` (to exhaustion) or :meth:`run_until`.

    When driving the default :class:`EventQueue` the run loops are
    inlined over the raw heap (local ``heappop`` alias, direct clock
    writes — heap order guarantees monotonic times); any other queue
    (e.g. :class:`LegacyEventQueue`) goes through the generic
    ``pop()``/``advance_to`` path.  Wall-clock time spent inside the run
    loops is accumulated so ``events_per_sec`` reports kernel throughput.
    """

    __slots__ = ("clock", "queue", "metrics", "_events_processed",
                 "_wall_seconds")

    def __init__(self, start_time: float = 0.0,
                 queue: Optional[Any] = None):
        self.clock = VirtualClock(start_time)
        self.queue = queue if queue is not None else EventQueue()
        self.metrics = MetricsRegistry()
        self._events_processed = 0
        self._wall_seconds = 0.0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds spent inside ``run``/``run_until`` loops."""
        return self._wall_seconds

    @property
    def events_per_sec(self) -> float:
        """Kernel throughput: events executed per wall-clock second."""
        if self._wall_seconds <= 0.0:
            return 0.0
        return self._events_processed / self._wall_seconds

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.queue.push(self.clock.now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.clock.now}")
        return self.queue.push(time, callback)

    def spawn(self, generator: Generator[Any, Any, Any],
              name: Optional[str] = None) -> "Proc":
        """Start a generator-driven process (see :mod:`repro.sim.procs`).

        The proc's first step runs as a zero-delay event, so spawning is
        never re-entrant; drive the simulator to make progress.
        """
        from repro.sim.procs import Proc
        return Proc(self, generator, name=name)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events processed by this call.
        """
        queue = self.queue
        if type(queue) is EventQueue:
            return self._run_fast(max_events, None)
        started = _time.perf_counter()  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
        processed = 0
        clock = self.clock
        try:
            while max_events is None or processed < max_events:
                event = queue.pop()
                if event is None:
                    break
                clock.advance_to(event.time)
                event.callback()
                processed += 1
        finally:
            self._events_processed += processed
            self._wall_seconds += _time.perf_counter() - started  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
        return processed

    def run_until(self, end_time: float) -> int:
        """Run events with ``time <= end_time``; park the clock at the end.

        Returns the number of events processed by this call.
        """
        queue = self.queue
        if type(queue) is EventQueue:
            processed = self._run_fast(None, end_time)
        else:
            started = _time.perf_counter()  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
            processed = 0
            clock = self.clock
            try:
                while True:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > end_time:
                        break
                    event = queue.pop()
                    assert event is not None
                    clock.advance_to(event.time)
                    event.callback()
                    processed += 1
            finally:
                self._events_processed += processed
                self._wall_seconds += _time.perf_counter() - started  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
        if end_time > self.clock.now:
            self.clock.advance_to(end_time)
        return processed

    # ------------------------------------------------------------------

    def _run_fast(self, max_events: Optional[int],
                  end_time: Optional[float]) -> int:
        """Inlined hot loop over the default queue's raw heap.

        Pops are batched straight off the heap with a local ``heappop``
        alias (no per-event method dispatch) and the clock is written
        directly: heap order guarantees event times never decrease, so
        the monotonicity check in ``advance_to`` is redundant here.
        """
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        clock = self.clock
        processed = 0
        limit = max_events if max_events is not None else -1
        started = _time.perf_counter()  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
        try:
            while heap:
                if processed == limit:
                    break
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if end_time is not None and event.time > end_time:
                    break
                heappop(heap)
                event._queue = None
                queue._live -= 1
                clock._now = event.time
                event.callback()
                processed += 1
        finally:
            self._events_processed += processed
            self._wall_seconds += _time.perf_counter() - started  # repro-lint: disable=RPL010 (wall-clock throughput instrumentation, not sim time)
        return processed

"""Metrics registry: named counters and histograms.

The AlvisP2P evaluation surface is almost entirely metric-shaped (bytes per
query, hops per lookup, postings stored per peer), so the kernel ships a
small registry that every layer writes into.  Metric names are hierarchical
strings like ``"net.bytes.sent.QueryRequest"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.util.process import peak_rss_kb
from repro.util.stats import summarize

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Histogram:
    """Stores raw samples; summarized on demand.

    Experiments are laptop-scale (at most a few million samples), so keeping
    raw values is affordable and lets the harness compute any percentile.
    """

    name: str
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    def summary(self) -> Dict[str, float]:
        """Return mean/percentiles; raises if no samples were recorded."""
        return summarize(self.samples)

    def __len__(self) -> int:
        return len(self.samples)


class MetricsRegistry:
    """Lazily creates counters and histograms by name."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Bumped on :meth:`reset` so callers holding direct ``Counter``
        #: references (the transport's accounting fast path) can detect
        #: that their cached objects were dropped from the registry.
        self.generation = 0

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter, or ``default`` if never written."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def counters_with_prefix(self, prefix: str) -> Mapping[str, float]:
        """Return ``{name: value}`` for all counters under ``prefix``."""
        return {name: counter.value
                for name, counter in self._counters.items()
                if name.startswith(prefix)}

    def total_with_prefix(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(self.counters_with_prefix(prefix).values())

    def reset(self) -> None:
        """Drop all recorded metrics (used between experiment phases)."""
        self._counters.clear()
        self._histograms.clear()
        self.generation += 1

    def snapshot(self, include_process: bool = False) -> Dict[str, float]:
        """A flat copy of every counter value (for experiment reports).

        With ``include_process`` the snapshot additionally reports
        ``process.peak_rss_kb`` — benchmark artifacts record memory
        next to throughput.
        """
        flat = {name: counter.value
                for name, counter in self._counters.items()}
        if include_process:
            flat["process.peak_rss_kb"] = float(peak_rss_kb())
        return flat

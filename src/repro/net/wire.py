"""Binary wire codec for the real-network transport backend.

Serializes every :class:`~repro.net.message.Message` kind on the query
path (``LookupHop``, ``ProbeBatch``, probe/lookup replies, the
HDK-keyed payloads of refinement, document access and the statistics
protocol) into self-contained datagrams, and back.

**Size reconciliation.**  The simulator's bandwidth results rest on the
per-field size model of :func:`repro.net.message.encoded_size`; this
codec is written so the model is *exact* for every supported kind:

* the frame header is exactly ``HEADER_BYTES`` (48) long — magic (2),
  version (1), kind tag (2), src/dst/message id/reply-to (8 each),
  payload length (4), reserved padding (7);
* payload fields are encoded as the model charges them: a 4-byte count
  prefix per container, field names as 2-byte-length UTF-8 strings,
  8-byte ints/ids/floats, 1-byte bools, posting lists in their
  ``wire_size()`` layout (8-byte global df, truncation flag, 4-byte
  count, 16 bytes per posting).

``len(encode(message)) == message.size_bytes() + WIRE_SIZE_DELTA`` with
``WIRE_SIZE_DELTA`` pinned to **0** — asserted for every supported kind
by ``tests/test_net_wire.py``, so any codec change that breaks the
reconciliation fails loudly.

**Optional fields.**  A ``None`` value is a single ``0xFF`` sentinel
byte (the model charges ``None`` one byte).  Optionality is therefore
only supported for specs whose first encoded byte can never be ``0xFF``
— length-prefixed strings/containers bounded by the datagram size, and
posting lists (whose leading byte is the high byte of an 8-byte global
df).  Plain optional ints are deliberately unsupported: a negative
big-endian int also starts with ``0xFF``.

Decoding failures raise :class:`WireError` subclasses; the UDP backend
catches them and drops the datagram, so a truncated, unknown-kind or
oversized datagram degrades into a clean ``RequestOutcome`` timeout or
drop instead of crashing the peer.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.net import protocol
from repro.net.message import HEADER_BYTES, Message
from repro.ir.postings import (POSTING_WIRE_BYTES, PackedPostings,
                               PostingList, pack_postings, unpack_entries)

__all__ = [
    "WIRE_SIZE_DELTA", "MAX_DATAGRAM_BYTES", "WIRE_MAGIC", "WIRE_VERSION",
    "ACK", "ERR", "HELLO", "WELCOME", "BYE",
    "WireError", "TruncatedDatagramError", "UnknownKindError",
    "OversizedPayloadError", "UnsupportedKindError",
    "encode", "decode", "supported_kinds", "message_kinds",
]

#: Pinned constant offset between ``len(encode(m))`` and the
#: ``encoded_size`` model's ``m.size_bytes()``.  Zero: the codec's frame
#: is exactly ``HEADER_BYTES`` and every payload field matches the model
#: byte for byte (see module docstring).
WIRE_SIZE_DELTA = 0

#: Hard bound on one encoded datagram (UDP's practical maximum payload).
MAX_DATAGRAM_BYTES = 65507

WIRE_MAGIC = 0xA1B5          #: "Alvis" frame marker
WIRE_VERSION = 1

# Wire-internal control kinds (never part of the simulator's protocol
# accounting): delivery acks for one-way messages, error nacks, and the
# cluster bootstrap handshake.
ACK = "__ack__"
ERR = "__err__"
HELLO = "__hello__"
WELCOME = "__welcome__"
BYE = "__bye__"


class WireError(Exception):
    """Base class for codec failures (malformed or unsupported data)."""


class TruncatedDatagramError(WireError):
    """The datagram ended before the announced structure did."""


class UnknownKindError(WireError):
    """The kind tag (or a payload field name) is not in the schema."""


class OversizedPayloadError(WireError):
    """The message does not fit in one UDP datagram."""


class UnsupportedKindError(WireError):
    """``encode`` was asked for a kind outside the query-path schema."""


# ----------------------------------------------------------------------
# Per-kind payload schemas
# ----------------------------------------------------------------------
#
# Field specs:
#   "id"     unsigned 64-bit integer (peer/key/document identifiers)
#   "int"    signed 64-bit integer (counts, df deltas)
#   "float"  IEEE-754 double
#   "bool"   1 byte
#   "str"    2-byte length prefix + UTF-8 bytes
#   ("list", item_spec)            4-byte count + items
#   ("map", key_spec, value_spec)  4-byte count + key/value pairs
#   ("struct", {name: spec})       encoded like a payload dict
#   ("opt", spec)                  None as one 0xFF byte, else spec
#   "postings"                     PostingList.wire_size() layout
#
# A payload only encodes the fields it actually carries (the 4-byte
# container prefix doubles as the field count), so variant payloads —
# e.g. LookupHop's single ``key_id`` vs batched ``key_ids`` — need no
# presence flags.

_PROBE_ITEM = ("struct", {"found": "bool",
                          "postings": ("opt", "postings")})

_SCHEMAS: Dict[str, Dict[str, Any]] = {
    protocol.LOOKUP_HOP: {"key_id": "id", "key_ids": ("list", "id")},
    protocol.DF_PUBLISH: {"dfs": ("map", "str", "int")},
    protocol.DF_GET: {"terms": ("list", "str")},
    protocol.DF_REPLY: {"dfs": ("map", "str", "int")},
    protocol.COLLECTION_PUBLISH: {"peer": "id", "docs": "int",
                                  "terms": "int"},
    protocol.COLLECTION_GET: {},
    protocol.COLLECTION_REPLY: {"docs": "int", "terms": "int",
                                "peers": "int"},
    protocol.PROBE_KEY: {"key_terms": ("list", "str")},
    protocol.PROBE_REPLY: {"found": "bool",
                           "postings": ("opt", "postings")},
    protocol.PROBE_BATCH: {"keys": ("list", ("list", "str"))},
    protocol.PROBE_BATCH_REPLY: {"results": ("list", _PROBE_ITEM)},
    protocol.FEEDBACK: {"key_terms": ("list", "str"), "redundant": "bool"},
    protocol.CONTRIBUTORS_GET: {"term": "str"},
    protocol.CONTRIBUTORS_REPLY: {"contributors": ("map", "id", "int")},
    protocol.HARVEST_KEY: {"key_terms": ("list", "str"), "k": "int"},
    protocol.HARVEST_REPLY: {"postings": ("opt", "postings"),
                             "local_df": "int"},
    protocol.REFINE_QUERY: {"terms": ("list", "str"),
                            "doc_ids": ("list", "id")},
    protocol.REFINE_REPLY: {"scores": ("map", "id", "float")},
    protocol.DOC_FETCH: {"doc_id": "id",
                         "credentials": ("opt", ("list", "str")),
                         "terms": ("list", "str")},
    protocol.DOC_REPLY: {"ok": "bool", "title": "str", "url": "str",
                         "snippet": "str", "error": "str"},
    protocol.RETRACT_DOC: {"key_terms": ("list", "str"), "doc_id": "id",
                           "contributor": "id", "new_local_df": "int"},
    # Wire-internal control traffic (cluster bootstrap + delivery acks).
    ACK: {},
    ERR: {"error": "str"},
    HELLO: {"host": "int", "port": "int", "fingerprint": "str"},
    WELCOME: {"ok": "bool", "error": "str"},
    BYE: {},
}

#: Fixed tag order — append only, so tags stay stable across versions.
_KIND_ORDER = (
    protocol.LOOKUP_HOP, protocol.DF_PUBLISH, protocol.DF_GET,
    protocol.DF_REPLY, protocol.COLLECTION_PUBLISH, protocol.COLLECTION_GET,
    protocol.COLLECTION_REPLY, protocol.PROBE_KEY, protocol.PROBE_REPLY,
    protocol.PROBE_BATCH, protocol.PROBE_BATCH_REPLY, protocol.FEEDBACK,
    protocol.CONTRIBUTORS_GET, protocol.CONTRIBUTORS_REPLY,
    protocol.HARVEST_KEY, protocol.HARVEST_REPLY, protocol.REFINE_QUERY,
    protocol.REFINE_REPLY, protocol.DOC_FETCH, protocol.DOC_REPLY,
    protocol.RETRACT_DOC, ACK, ERR, HELLO, WELCOME, BYE,
)

_KIND_TO_TAG = {kind: tag for tag, kind in enumerate(_KIND_ORDER, start=1)}
_TAG_TO_KIND = {tag: kind for kind, tag in _KIND_TO_TAG.items()}

_NONE_SENTINEL = 0xFF

_HEADER = struct.Struct(">HBHQQQQI7x")
assert _HEADER.size == HEADER_BYTES, _HEADER.size


def supported_kinds() -> Tuple[str, ...]:
    """Every message kind the codec can carry (schema order)."""
    return _KIND_ORDER


def message_kinds() -> Dict[str, Tuple[str, ...]]:
    """The full wire schema: kind -> field names, in tag order.

    This is the runtime ground truth that ``repro lint``'s wire-schema
    checker extracts statically; ``tests/test_lint_wire_schema.py`` pins
    the two views against each other so the checker cannot silently
    drift from the codec.
    """
    return {kind: tuple(_SCHEMAS[kind]) for kind in _KIND_ORDER}


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_value(out: bytearray, spec: Any, value: Any,
                  context: str) -> None:
    if isinstance(spec, tuple) and spec[0] == "opt":
        if value is None:
            out.append(_NONE_SENTINEL)
            return
        spec = spec[1]
    if value is None:
        raise WireError(f"{context}: unexpected None for spec {spec!r}")
    if spec == "id":
        out += struct.pack(">Q", int(value))
    elif spec == "int":
        out += struct.pack(">q", int(value))
    elif spec == "float":
        out += struct.pack(">d", float(value))
    elif spec == "bool":
        out.append(1 if value else 0)
    elif spec == "str":
        data = str(value).encode("utf-8")
        if len(data) > 0xFFFF:
            raise OversizedPayloadError(
                f"{context}: string of {len(data)} bytes")
        out += struct.pack(">H", len(data))
        out += data
    elif spec == "postings":
        _encode_postings(out, value)
    elif spec[0] == "list":
        items = list(value)
        out += struct.pack(">I", len(items))
        for item in items:
            _encode_value(out, spec[1], item, context)
    elif spec[0] == "map":
        items = list(value.items())
        out += struct.pack(">I", len(items))
        for key, item in items:
            _encode_value(out, spec[1], key, context)
            _encode_value(out, spec[2], item, context)
    elif spec[0] == "struct":
        _encode_fields(out, spec[1], value, context)
    else:
        raise WireError(f"{context}: unknown spec {spec!r}")


def _encode_postings(out: bytearray, postings: PostingList) -> None:
    if isinstance(postings, PackedPostings):
        # Already in wire form (packed simulator payloads): splice the
        # bytes straight in — the layouts are identical by construction.
        out += postings.data
        return
    out += pack_postings(postings)


def _encode_fields(out: bytearray, schema: Mapping[str, Any],
                   payload: Mapping[str, Any], context: str) -> None:
    out += struct.pack(">I", len(payload))
    for name, value in payload.items():
        spec = schema.get(name)
        if spec is None:
            raise UnknownKindError(f"{context}: field {name!r} not in schema")
        name_bytes = name.encode("utf-8")
        out += struct.pack(">H", len(name_bytes))
        out += name_bytes
        _encode_value(out, spec, value, f"{context}.{name}")


def encode(message: Message) -> bytes:
    """Encode one message into a self-contained datagram.

    Raises :class:`UnsupportedKindError` for kinds outside the
    query-path schema and :class:`OversizedPayloadError` when the
    result would not fit in one UDP datagram.
    """
    schema = _SCHEMAS.get(message.kind)
    if schema is None:
        raise UnsupportedKindError(
            f"no wire schema for message kind {message.kind!r}")
    payload = bytearray()
    _encode_fields(payload, schema, message.payload, message.kind)
    total = HEADER_BYTES + len(payload)
    if total > MAX_DATAGRAM_BYTES:
        raise OversizedPayloadError(
            f"{message.kind} message of {total} bytes exceeds the "
            f"{MAX_DATAGRAM_BYTES}-byte datagram bound")
    header = _HEADER.pack(WIRE_MAGIC, WIRE_VERSION,
                          _KIND_TO_TAG[message.kind],
                          message.src, message.dst, message.message_id,
                          message.reply_to or 0, len(payload))
    return header + bytes(payload)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int):
        self.data = data
        self.offset = offset

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise TruncatedDatagramError(
                f"needed {count} bytes at offset {self.offset}, "
                f"datagram has {len(self.data)}")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def peek(self) -> int:
        if self.offset >= len(self.data):
            raise TruncatedDatagramError("datagram ended at a value")
        return self.data[self.offset]

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))


_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_POSTING = struct.Struct(">Qd")
_POSTINGS_ENVELOPE = struct.Struct(">QBI")

#: Cap on decoded container sizes: no legitimate container in one
#: datagram can hold more items than the datagram has bytes.
_MAX_ITEMS = MAX_DATAGRAM_BYTES


def _decode_utf8(raw: bytes, context: str) -> str:
    """Decode a UTF-8 string field, mapping bad bytes to a WireError.

    A corrupted datagram must never leak a ``UnicodeDecodeError`` (not a
    :class:`WireError`) past :func:`decode` — the transport's single
    except-clause would miss it (found by the decoder fuzz tests).
    """
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireError(f"{context}: invalid UTF-8 string") from error


def _decode_count(reader: _Reader, context: str) -> int:
    (count,) = reader.unpack(_U32)
    if count > _MAX_ITEMS:
        raise TruncatedDatagramError(
            f"{context}: container announces {count} items")
    return count


def _decode_value(reader: _Reader, spec: Any, context: str) -> Any:
    if isinstance(spec, tuple) and spec[0] == "opt":
        if reader.peek() == _NONE_SENTINEL:
            reader.take(1)
            return None
        spec = spec[1]
    if spec == "id":
        return reader.unpack(_U64)[0]
    if spec == "int":
        return reader.unpack(_I64)[0]
    if spec == "float":
        return reader.unpack(_F64)[0]
    if spec == "bool":
        return reader.take(1)[0] != 0
    if spec == "str":
        (length,) = reader.unpack(_U16)
        return _decode_utf8(reader.take(length), context)
    if spec == "postings":
        return _decode_postings(reader, context)
    if spec[0] == "list":
        count = _decode_count(reader, context)
        return [_decode_value(reader, spec[1], context)
                for _ in range(count)]
    if spec[0] == "map":
        count = _decode_count(reader, context)
        result = {}
        for _ in range(count):
            key = _decode_value(reader, spec[1], context)
            result[key] = _decode_value(reader, spec[2], context)
        return result
    if spec[0] == "struct":
        return _decode_fields(reader, spec[1], context)
    raise WireError(f"{context}: unknown spec {spec!r}")


def _decode_postings(reader: _Reader, context: str) -> PostingList:
    global_df, truncated_flag, count = reader.unpack(_POSTINGS_ENVELOPE)
    if count > _MAX_ITEMS:
        raise TruncatedDatagramError(
            f"{context}: posting list announces {count} entries")
    try:
        # Vectorized entry-block decode (pure-Python fallback inside).
        entries = unpack_entries(reader.data, reader.offset, count)
    except ValueError as error:
        raise TruncatedDatagramError(f"{context}: {error}") from error
    reader.offset += count * POSTING_WIRE_BYTES
    # An untruncated flag with global_df > len(entries) cannot happen on
    # encode; tolerate it on decode (global_df already encodes it).
    del truncated_flag
    return PostingList(entries, global_df=max(global_df, len(entries)))


def _decode_fields(reader: _Reader, schema: Mapping[str, Any],
                   context: str) -> Dict[str, Any]:
    count = _decode_count(reader, context)
    payload: Dict[str, Any] = {}
    for _ in range(count):
        (name_length,) = reader.unpack(_U16)
        name = _decode_utf8(reader.take(name_length), context)
        spec = schema.get(name)
        if spec is None:
            raise UnknownKindError(
                f"{context}: field {name!r} not in schema")
        payload[name] = _decode_value(reader, spec, f"{context}.{name}")
    return payload


def decode(data: bytes) -> Message:
    """Decode one datagram back into a :class:`Message`.

    Raises a :class:`WireError` subclass on any malformed input; never
    returns a partially-decoded message.
    """
    if len(data) < HEADER_BYTES:
        raise TruncatedDatagramError(
            f"datagram of {len(data)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header")
    if len(data) > MAX_DATAGRAM_BYTES:
        raise OversizedPayloadError(
            f"datagram of {len(data)} bytes exceeds the bound")
    magic, version, tag, src, dst, message_id, reply_to, payload_len = \
        _HEADER.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic 0x{magic:04X}")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    kind = _TAG_TO_KIND.get(tag)
    if kind is None:
        raise UnknownKindError(f"unknown kind tag {tag}")
    if payload_len != len(data) - HEADER_BYTES:
        raise TruncatedDatagramError(
            f"payload length field says {payload_len}, datagram "
            f"carries {len(data) - HEADER_BYTES}")
    reader = _Reader(data, HEADER_BYTES)
    payload = _decode_fields(reader, _SCHEMAS[kind], kind)
    if reader.offset != len(data):
        raise WireError(
            f"{len(data) - reader.offset} trailing bytes after payload")
    return Message(src=src, dst=dst, kind=kind, payload=payload,
                   reply_to=reply_to or None, message_id=message_id)

"""Messages and the wire-size model.

Bandwidth consumption is the paper's central scalability argument, so the
simulator does not hand-wave sizes: every message carries a payload whose
encoded size is estimated with the same per-field accounting a compact
binary codec would produce.  The constants below mirror common wire formats
(8-byte ids and offsets, UTF-8 strings with a 2-byte length prefix).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["HEADER_BYTES", "encoded_size", "Message"]

#: Fixed per-message overhead: src/dst peer ids (8 B each), message id (8 B),
#: type tag (2 B), payload length (4 B), plus IP/TCP-ish framing amortized
#: to 18 B. Total 48 B — deliberately conservative.
HEADER_BYTES = 48

_BYTES_PER_INT = 8
_BYTES_PER_FLOAT = 8
_BYTES_PER_BOOL = 1
_STRING_LENGTH_PREFIX = 2
_CONTAINER_PREFIX = 4

_message_ids = itertools.count(1)


def encoded_size(value: Any) -> int:
    """Estimate the encoded size in bytes of a payload value.

    Supports the JSON-ish types used in payloads: ``None``, ``bool``,
    ``int``, ``float``, ``str``, ``bytes`` and (possibly nested) lists,
    tuples, sets, frozensets and mappings.  Objects exposing a
    ``wire_size()`` method (e.g. posting lists) report their own size.

    >>> encoded_size(7)
    8
    >>> encoded_size("abc")
    5
    >>> encoded_size([1, 2]) == _CONTAINER_PREFIX + 16
    True
    """
    if value is None:
        return 1
    wire_size = getattr(value, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if isinstance(value, bool):
        return _BYTES_PER_BOOL
    if isinstance(value, int):
        return _BYTES_PER_INT
    if isinstance(value, float):
        return _BYTES_PER_FLOAT
    if isinstance(value, str):
        return _STRING_LENGTH_PREFIX + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return _STRING_LENGTH_PREFIX + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_PREFIX + sum(encoded_size(item) for item in value)
    if isinstance(value, Mapping):
        return _CONTAINER_PREFIX + sum(
            encoded_size(key) + encoded_size(item)
            for key, item in value.items())
    raise TypeError(f"cannot estimate wire size of {type(value).__name__}")


@dataclass
class Message:
    """A point-to-point message between two peers.

    ``kind`` is a short type tag (e.g. ``"LookupRequest"``) used both for
    dispatch and for per-type traffic accounting.  ``payload`` is a mapping
    of field name to value; its size is computed lazily and cached.
    """

    src: int
    dst: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    reply_to: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    _cached_size: Optional[int] = field(default=None, repr=False,
                                        compare=False)

    def size_bytes(self) -> int:
        """Total wire size: header plus encoded payload."""
        if self._cached_size is None:
            self._cached_size = HEADER_BYTES + encoded_size(dict(self.payload))
        return self._cached_size

    def reply(self, kind: str, payload: Mapping[str, Any]) -> "Message":
        """Build a response message routed back to the sender."""
        return Message(src=self.dst, dst=self.src, kind=kind,
                       payload=payload, reply_to=self.message_id)

    def __repr__(self) -> str:
        return (f"Message(#{self.message_id} {self.kind} "
                f"{self.src}->{self.dst}, {self.size_bytes()}B)")

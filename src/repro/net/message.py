"""Messages and the wire-size model.

Bandwidth consumption is the paper's central scalability argument, so the
simulator does not hand-wave sizes: every message carries a payload whose
encoded size is estimated with the same per-field accounting a compact
binary codec would produce.  The constants below mirror common wire formats
(8-byte ids and offsets, UTF-8 strings with a 2-byte length prefix).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["HEADER_BYTES", "encoded_size", "Message"]

#: Fixed per-message overhead: src/dst peer ids (8 B each), message id (8 B),
#: type tag (2 B), payload length (4 B), plus IP/TCP-ish framing amortized
#: to 18 B. Total 48 B — deliberately conservative.
HEADER_BYTES = 48

_BYTES_PER_INT = 8
_BYTES_PER_FLOAT = 8
_BYTES_PER_BOOL = 1
_STRING_LENGTH_PREFIX = 2
_CONTAINER_PREFIX = 4

_message_ids = itertools.count(1)

#: Memoized string sizes (fast sizing path only).  Payload strings are
#: overwhelmingly drawn from a small shared pool (vocabulary terms,
#: message field names), so the UTF-8 encode is paid once per distinct
#: string.  Bounded so adversarial workloads with unbounded distinct
#: strings cannot grow it forever.
_string_sizes: dict = {}
_STRING_CACHE_LIMIT = 1 << 16

#: When true, :func:`encoded_size` uses the pre-optimisation reference
#: implementation (attribute probe first, no memoization).  Flipped by
#: ``AlvisNetwork`` when ``kernel_profile="legacy"`` so A/B benchmarks
#: pin the old CPU path; both paths return identical sizes for every
#: input, so this is a timing knob, never a semantic one.  Process-wide:
#: the most recently constructed network wins.
_legacy_sizing = False


def set_legacy_sizing(enabled: bool) -> None:
    """Pin (or unpin) the pre-optimisation sizing path.

    Called by ``AlvisNetwork`` according to its ``kernel_profile``.
    Both paths are size-identical on every supported value — benchmarks
    flip this to hold the baseline kernel's constant factors fixed.
    """
    global _legacy_sizing
    _legacy_sizing = bool(enabled)


def _encoded_size_legacy(value: Any) -> int:
    """Reference sizing: the pre-optimisation implementation, verbatim."""
    if value is None:
        return 1
    wire_size = getattr(value, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if isinstance(value, bool):
        return _BYTES_PER_BOOL
    if isinstance(value, int):
        return _BYTES_PER_INT
    if isinstance(value, float):
        return _BYTES_PER_FLOAT
    if isinstance(value, str):
        return _STRING_LENGTH_PREFIX + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return _STRING_LENGTH_PREFIX + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_PREFIX + sum(
            _encoded_size_legacy(item) for item in value)
    if isinstance(value, Mapping):
        return _CONTAINER_PREFIX + sum(
            _encoded_size_legacy(key) + _encoded_size_legacy(item)
            for key, item in value.items())
    raise TypeError(f"cannot estimate wire size of {type(value).__name__}")


def _encoded_size_fast(value: Any) -> int:
    """Optimised sizing: exact-type dispatch before attribute probing.

    Payload values are overwhelmingly the built-in scalars/containers,
    and probing every int for a ``wire_size`` attribute dominated
    sizing at indexing scale.  An exact ``bool``/``int``/``float``/
    ``str``/plain container cannot carry a ``wire_size`` method, so the
    short-circuits are byte-identical to the reference path (which
    still handles subclasses and sized objects as the fallback).
    """
    kind = type(value)
    if kind is int:
        return _BYTES_PER_INT
    if kind is str:
        size = _string_sizes.get(value)
        if size is None:
            size = _STRING_LENGTH_PREFIX + len(value.encode("utf-8"))
            if len(_string_sizes) < _STRING_CACHE_LIMIT:
                _string_sizes[value] = size
        return size
    if kind is float:
        return _BYTES_PER_FLOAT
    if kind is bool:
        return _BYTES_PER_BOOL
    if kind is dict:
        # Scalar fields are inlined — payload dicts are small and
        # overwhelmingly str keys with int/str/float values, and the
        # recursive call per field dominated sizing at indexing scale.
        sizes = _string_sizes
        total = _CONTAINER_PREFIX
        for key, item in value.items():
            if type(key) is str:
                size = sizes.get(key)
                if size is None:
                    size = (_STRING_LENGTH_PREFIX
                            + len(key.encode("utf-8")))
                    if len(sizes) < _STRING_CACHE_LIMIT:
                        sizes[key] = size
                total += size
            else:
                total += _encoded_size_fast(key)
            kind_item = type(item)
            if kind_item is int:
                total += _BYTES_PER_INT
            elif kind_item is str:
                size = sizes.get(item)
                if size is None:
                    size = (_STRING_LENGTH_PREFIX
                            + len(item.encode("utf-8")))
                    if len(sizes) < _STRING_CACHE_LIMIT:
                        sizes[item] = size
                total += size
            elif kind_item is float:
                total += _BYTES_PER_FLOAT
            else:
                total += _encoded_size_fast(item)
        return total
    if kind is list or kind is tuple:
        total = _CONTAINER_PREFIX
        for item in value:
            if type(item) is int:
                total += _BYTES_PER_INT
            else:
                total += _encoded_size_fast(item)
        return total
    if value is None:
        return 1
    wire_size = getattr(value, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if isinstance(value, bool):
        return _BYTES_PER_BOOL
    if isinstance(value, int):
        return _BYTES_PER_INT
    if isinstance(value, float):
        return _BYTES_PER_FLOAT
    if isinstance(value, str):
        return _STRING_LENGTH_PREFIX + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return _STRING_LENGTH_PREFIX + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _CONTAINER_PREFIX + sum(
            _encoded_size_fast(item) for item in value)
    if isinstance(value, Mapping):
        return _CONTAINER_PREFIX + sum(
            _encoded_size_fast(key) + _encoded_size_fast(item)
            for key, item in value.items())
    raise TypeError(f"cannot estimate wire size of {type(value).__name__}")


def encoded_size(value: Any) -> int:
    """Estimate the encoded size in bytes of a payload value.

    Supports the JSON-ish types used in payloads: ``None``, ``bool``,
    ``int``, ``float``, ``str``, ``bytes`` and (possibly nested) lists,
    tuples, sets, frozensets and mappings.  Objects exposing a
    ``wire_size()`` method (e.g. posting lists) report their own size.

    >>> encoded_size(7)
    8
    >>> encoded_size("abc")
    5
    >>> encoded_size([1, 2]) == _CONTAINER_PREFIX + 16
    True
    """
    if _legacy_sizing:
        return _encoded_size_legacy(value)
    return _encoded_size_fast(value)


@dataclass
class Message:
    """A point-to-point message between two peers.

    ``kind`` is a short type tag (e.g. ``"LookupRequest"``) used both for
    dispatch and for per-type traffic accounting.  ``payload`` is a mapping
    of field name to value; its size is computed lazily and cached.
    """

    src: int
    dst: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    reply_to: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    _cached_size: Optional[int] = field(default=None, repr=False,
                                        compare=False)

    def size_bytes(self) -> int:
        """Total wire size: header plus encoded payload."""
        if self._cached_size is None:
            payload = (dict(self.payload) if _legacy_sizing
                       else self.payload)
            self._cached_size = HEADER_BYTES + encoded_size(payload)
        return self._cached_size

    def reply(self, kind: str, payload: Mapping[str, Any]) -> "Message":
        """Build a response message routed back to the sender."""
        return Message(src=self.dst, dst=self.src, kind=kind,
                       payload=payload, reply_to=self.message_id)

    def __repr__(self) -> str:
        return (f"Message(#{self.message_id} {self.kind} "
                f"{self.src}->{self.dst}, {self.size_bytes()}B)")

"""The simulated transport (default :class:`TransportBackend`).

The query engine and the async runtime talk to the network through the
:class:`TransportBackend` protocol; :class:`SimTransport` below is its
discrete-event implementation (and the default), while
:mod:`repro.net.udp` provides a real asyncio/UDP backend with the same
surface.  ``Transport`` remains an alias of :class:`SimTransport` for
backwards compatibility.

Two delivery modes are offered:

* :meth:`Transport.request` — synchronous request/response.  The handler of
  the destination endpoint runs immediately; bytes are accounted in both
  directions and the round-trip latency is *returned* so callers can
  accumulate per-operation virtual time without running the event loop.
  The distributed-IR layers (L3/L4) use this mode: their protocols are
  strictly request/reply and the interesting measurements are bytes and
  message counts.

* :meth:`Transport.send_async` — schedules delivery through the simulator's
  event queue after a sampled latency.  The DHT congestion-control
  experiment (E8) uses this mode, where queueing effects matter.

* :meth:`Transport.request_async` — the correlated request/reply API the
  async query runtime builds on: every call gets a request id and a
  :class:`~repro.sim.procs.Future` that resolves with a
  :class:`RequestOutcome` when the reply arrives (or, for one-way
  messages, on delivery).  Churn drops and timeouts are *surfaced* in
  the outcome instead of raising, and per-destination in-flight counts
  are tracked for the monitoring dashboard.

With :meth:`Transport.configure_service_model` each destination endpoint
additionally gets a *bounded service queue* on the event kernel (the
Klemm/NCA'06 queueing model of ``repro.dht.congestion``, wired into
delivery): async messages wait in a finite FIFO and are processed at a
fixed ``service_rate``, so hot owners exhibit real queueing delay — and
overflow *drops*, surfaced to async senders as an ``"overflow"`` outcome
whose notification travels back with one network delay.  Off by default
(infinite instantaneous capacity, the historical behaviour); only the
event-loop delivery paths queue, the synchronous compatibility path is
untouched.

Every byte is accounted twice over: globally per message kind
(``net.bytes.sent.<kind>``) and per destination peer (for load-balance
metrics).
"""

from __future__ import annotations

import collections
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Mapping, Optional, Protocol, Tuple

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.sim.events import Simulator
from repro.sim.procs import Future

__all__ = ["DeliveryError", "Endpoint", "RequestOutcome", "SimTransport",
           "Transport", "TransportBackend"]


class DeliveryError(Exception):
    """Raised when a message is addressed to an unknown or dead endpoint."""


@dataclass
class RequestOutcome:
    """Resolution of one :meth:`Transport.request_async` call.

    ``status`` is ``"ok"`` (reply received, or one-way delivery
    confirmed), ``"dropped"`` (the destination unregistered before
    delivery — churn), ``"overflow"`` (the destination's bounded service
    queue was full — congestion; the request is retryable), or
    ``"timeout"``.  ``rtt`` is the virtual time between send and
    resolution.
    """

    request_id: int
    status: str
    request: Message
    reply: Optional[Message]
    rtt: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def request_bytes(self) -> int:
        return self.request.size_bytes()

    @property
    def reply_bytes(self) -> int:
        return self.reply.size_bytes() if self.reply is not None else 0


class Endpoint(Protocol):
    """Anything attachable to the transport.

    ``on_message`` may return a reply message (or ``None`` for one-way
    traffic).
    """

    def on_message(self, message: Message) -> Optional[Message]:
        """Handle one inbound message, optionally returning a reply."""
        ...


class TransportBackend(Protocol):
    """What the query engine requires from a transport.

    Extracted from the simulated transport so the same
    ``QueryEngine`` / ``AsyncQueryRuntime`` code drives either the
    discrete-event simulator (:class:`SimTransport`) or real sockets
    (:class:`repro.net.udp.UdpTransport`).  Implementations must mirror
    the failure semantics documented on :class:`SimTransport`:

    * :meth:`request` raises :class:`DeliveryError` for unknown or
      departed destinations (and, on real networks, timeouts);
    * :meth:`request_async` never raises — churn, congestion and
      timeouts are surfaced as the :class:`RequestOutcome` status;
    * per-destination in-flight counts cover every
      :meth:`request_async` send-to-resolution window and return to
      zero once all outcomes resolved.
    """

    #: Per-destination inbound traffic, for load-balance metrics.
    bytes_in: Dict[int, int]
    msgs_in: Dict[int, int]

    def register(self, peer_id: int, endpoint: Endpoint) -> None:
        """Attach a locally-hosted endpoint under ``peer_id``."""
        ...

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (e.g. on churn departure)."""
        ...

    def is_registered(self, peer_id: int) -> bool:
        ...

    def endpoints(self) -> Tuple[int, ...]:
        ...

    def reset_load_counters(self) -> None:
        ...

    def inflight(self, peer_id: int) -> int:
        ...

    def total_inflight(self) -> int:
        ...

    def request(self, message: Message) -> Tuple[Optional[Message], float]:
        ...

    def send_local(self, message: Message) -> Optional[Message]:
        ...

    def send_async(self, message: Message,
                   on_reply: Optional[Callable[[Message], None]] = None,
                   on_drop: Optional[Callable[[Message], None]] = None,
                   on_delivered: Optional[
                       Callable[[Message, Optional[Message]], None]] = None,
                   on_overflow: Optional[
                       Callable[[Message], None]] = None) -> None:
        ...

    def request_async(self, message: Message,
                      timeout: Optional[float] = None) -> Future:
        ...


class _ServiceQueue:
    """A bounded FIFO + fixed-rate server for one destination endpoint.

    The :class:`~repro.dht.congestion.QueueingNode` model wired into
    transport delivery: tasks (message deliveries) wait in a finite
    queue and complete after ``1 / rate`` seconds of service each;
    arrivals beyond ``capacity`` invoke their overflow callback instead.

    ``reject_cost`` is the fraction of one service time the server
    spends *shedding* an overflow arrival (receiving the message off
    the wire and generating the rejection) — wasted work that competes
    with useful service, the mechanism that turns an overload of blind
    retransmissions into genuine congestion collapse.  The cost is
    accumulated and charged onto the next service completion.
    """

    __slots__ = ("simulator", "rate", "capacity", "reject_cost",
                 "arrived", "completed", "dropped", "_queue", "_busy",
                 "_penalty")

    def __init__(self, simulator: Simulator, rate: float, capacity: int,
                 reject_cost: float = 0.0):
        self.simulator = simulator
        self.rate = rate
        self.capacity = capacity
        self.reject_cost = reject_cost
        self.arrived = 0
        self.completed = 0
        self.dropped = 0
        self._queue: Deque[Callable[[], None]] = collections.deque()
        self._busy = False
        self._penalty = 0.0      #: reject-handling seconds not yet served

    @property
    def queue_length(self) -> int:
        """Tasks currently waiting (excluding the one in service)."""
        return len(self._queue)

    def offer(self, task: Callable[[], None],
              on_overflow: Callable[[], None]) -> None:
        self.arrived += 1
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            self._penalty += self.reject_cost / self.rate
            on_overflow()
            return
        self._queue.append(task)
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        task = self._queue.popleft()
        service_time = 1.0 / self.rate + self._penalty
        self._penalty = 0.0

        def finish() -> None:
            self.completed += 1
            task()
            self._serve_next()

        self.simulator.schedule(service_time, finish)


class SimTransport:
    """Point-to-point messaging between registered endpoints (simulated).

    The default :class:`TransportBackend`: delivery happens in virtual
    time on the discrete-event kernel, with per-message byte accounting
    against the wire-size model of :mod:`repro.net.message`.
    """

    def __init__(self, simulator: Simulator,
                 latency: Optional[LatencyModel] = None,
                 rng: Optional[random.Random] = None):
        self.simulator = simulator
        self.latency = latency if latency is not None else ConstantLatency()
        self.rng = rng if rng is not None else random.Random(0)
        self._endpoints: Dict[int, Endpoint] = {}
        #: Per-peer inbound traffic, for load-balance experiments.
        self.bytes_in: Dict[int, int] = {}
        self.msgs_in: Dict[int, int] = {}
        #: Outstanding :meth:`request_async` calls per destination.
        self._inflight: Dict[int, int] = {}
        self._request_ids = itertools.count(1)
        #: Bounded-service-queue model (0 rate = disabled: infinite
        #: instantaneous capacity, the historical behaviour).
        self._service_rate = 0.0
        self._service_capacity = 0
        self._service_reject_cost = 0.0
        self._service_queues: Dict[int, _ServiceQueue] = {}
        #: Heterogeneity: per-endpoint service-rate overrides (slow or
        #: fast minorities) on top of the uniform configured rate.
        self._service_rate_overrides: Dict[int, float] = {}
        #: Active network partition: endpoint id -> group tag; ``None``
        #: means fully connected.  Endpoints absent from the mapping are
        #: in the implicit group ``0``.
        self._partition_of: Optional[Dict[int, int]] = None
        #: Accounting fast path: direct ``Counter`` references per
        #: message kind, invalidated when the registry's generation
        #: moves (``MetricsRegistry.reset`` drops the counter objects).
        self._counter_cache: Dict[str, Tuple] = {}
        self._counter_gen = -1
        self._total_counters: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, peer_id: int, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` under ``peer_id``; replaces any previous one."""
        self._endpoints[peer_id] = endpoint
        self.bytes_in.setdefault(peer_id, 0)
        self.msgs_in.setdefault(peer_id, 0)

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (e.g. on churn departure)."""
        self._endpoints.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        """True if a live endpoint is attached under ``peer_id``."""
        return peer_id in self._endpoints

    def endpoints(self) -> Tuple[int, ...]:
        """Ids of all registered endpoints."""
        return tuple(self._endpoints.keys())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(self, message: Message) -> None:
        self._account_raw(message.kind, message.dst, message.size_bytes())

    def _account_raw(self, kind: str, dst: int, size: int) -> None:
        """Accounting with cached counter objects.

        ``metrics.counter(name)`` is two dict probes plus an f-string per
        call; at 100k-peer indexing scale that dominated delivery.  Sizes
        are always non-negative (wire-size model), so the values are
        bumped directly.
        """
        metrics = self.simulator.metrics
        if metrics.generation != self._counter_gen:
            self._counter_cache = {}
            self._counter_gen = metrics.generation
            self._total_counters = (metrics.counter("net.msgs.sent"),
                                    metrics.counter("net.bytes.sent"))
        counters = self._counter_cache.get(kind)
        if counters is None:
            counters = (metrics.counter(f"net.msgs.sent.{kind}"),
                        metrics.counter(f"net.bytes.sent.{kind}"))
            self._counter_cache[kind] = counters
        msgs_total, bytes_total = self._total_counters
        msgs_total.value += 1.0
        bytes_total.value += size
        counters[0].value += 1.0
        counters[1].value += size
        self.bytes_in[dst] = self.bytes_in.get(dst, 0) + size
        self.msgs_in[dst] = self.msgs_in.get(dst, 0) + 1

    def reset_load_counters(self) -> None:
        """Zero the per-peer inbound counters (between experiment phases).

        Entries for peers that have since unregistered are pruned rather
        than zeroed: under sustained churn the counter dicts would
        otherwise grow monotonically with every peer that ever existed.
        """
        self.bytes_in = {peer_id: 0 for peer_id in self._endpoints}
        self.msgs_in = {peer_id: 0 for peer_id in self._endpoints}

    # ------------------------------------------------------------------
    # Network partitions (fault injection)
    # ------------------------------------------------------------------

    def set_partition(self, groups: Mapping[int, int]) -> None:
        """Partition the network: ``groups`` maps endpoint ids to group
        tags, and any message whose source and destination carry
        different tags is dropped in flight.

        Endpoints absent from the mapping are in the implicit group
        ``0`` (so a single explicit group splits it from the rest, and
        peers joining mid-partition land on the majority side).  Failure
        surfacing matches churn: synchronous :meth:`request` raises
        :class:`DeliveryError`, async delivery invokes ``on_drop`` — and
        the reply leg is checked too, so a partition installed while a
        reply is in flight drops it.  Replaces any previous partition;
        :meth:`clear_partition` heals.
        """
        self._partition_of = dict(groups)

    def clear_partition(self) -> None:
        """Heal the network: resume cross-group delivery."""
        self._partition_of = None

    @property
    def partition_active(self) -> bool:
        """True while a partition installed by :meth:`set_partition`
        is in effect."""
        return self._partition_of is not None

    def _partitioned(self, src: int, dst: int) -> bool:
        groups = self._partition_of
        if groups is None:
            return False
        return groups.get(src, 0) != groups.get(dst, 0)

    # ------------------------------------------------------------------
    # In-flight tracking (async requests)
    # ------------------------------------------------------------------

    def inflight(self, peer_id: int) -> int:
        """Outstanding async requests addressed to ``peer_id``."""
        return self._inflight.get(peer_id, 0)

    def total_inflight(self) -> int:
        """Outstanding async requests across all destinations."""
        return sum(self._inflight.values())

    # ------------------------------------------------------------------
    # Bounded endpoint service queues (congestion model)
    # ------------------------------------------------------------------

    def configure_service_model(self, service_rate: float,
                                queue_capacity: int,
                                reject_cost: float = 0.0) -> None:
        """Give every endpoint a bounded service queue for async delivery.

        ``service_rate`` requests/second per endpoint, at most
        ``queue_capacity`` waiting; overflow surfaces as an
        ``"overflow"`` :class:`RequestOutcome` and costs the server
        ``reject_cost`` service-time fractions of wasted shedding work.
        ``service_rate = 0`` disables the model (and clears any existing
        queues).
        """
        if service_rate < 0:
            raise ValueError(
                f"service_rate must be >= 0, got {service_rate}")
        if service_rate > 0 and queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        if reject_cost < 0:
            raise ValueError(
                f"reject_cost must be >= 0, got {reject_cost}")
        self._service_rate = service_rate
        self._service_capacity = queue_capacity
        self._service_reject_cost = reject_cost
        self._service_queues = {}
        self._service_rate_overrides = {}

    def set_service_rate(self, peer_id: int, service_rate: float) -> None:
        """Override one endpoint's service rate (peer heterogeneity).

        Requires the service model to be active
        (:meth:`configure_service_model`); the override survives until
        the model is reconfigured.  An existing queue is re-rated in
        place — in-service tasks keep their already-scheduled completion
        time, later ones are served at the new rate.
        """
        if self._service_rate <= 0:
            raise ValueError(
                "set_service_rate requires an active service model "
                "(configure_service_model first)")
        if service_rate <= 0:
            raise ValueError(
                f"service_rate must be positive, got {service_rate}")
        self._service_rate_overrides[peer_id] = service_rate
        queue = self._service_queues.get(peer_id)
        if queue is not None:
            queue.rate = service_rate

    def service_rate_of(self, peer_id: int) -> float:
        """The effective service rate for ``peer_id`` (0 = model off)."""
        if self._service_rate <= 0:
            return 0.0
        return self._service_rate_overrides.get(peer_id,
                                                self._service_rate)

    @property
    def service_model_active(self) -> bool:
        """True when async deliveries go through bounded service queues."""
        return self._service_rate > 0

    def _service_queue_for(self, peer_id: int) -> Optional[_ServiceQueue]:
        if self._service_rate <= 0:
            return None
        queue = self._service_queues.get(peer_id)
        if queue is None:
            queue = _ServiceQueue(self.simulator,
                                  self._service_rate_overrides.get(
                                      peer_id, self._service_rate),
                                  self._service_capacity,
                                  self._service_reject_cost)
            self._service_queues[peer_id] = queue
        return queue

    def service_queue_length(self, peer_id: int) -> int:
        """Messages waiting in ``peer_id``'s service queue."""
        queue = self._service_queues.get(peer_id)
        return queue.queue_length if queue is not None else 0

    def queue_drops_total(self) -> int:
        """Service-queue overflow drops across all endpoints."""
        return sum(queue.dropped
                   for queue in self._service_queues.values())

    def service_stats(self) -> Dict[str, int]:
        """Aggregated service-queue counters (arrived/completed/dropped/
        queued) across all endpoints."""
        queues = self._service_queues.values()
        return {
            "arrived": sum(queue.arrived for queue in queues),
            "completed": sum(queue.completed for queue in queues),
            "dropped": sum(queue.dropped for queue in queues),
            "queued": sum(queue.queue_length for queue in queues),
        }

    # ------------------------------------------------------------------
    # Synchronous request/response
    # ------------------------------------------------------------------

    def request(self, message: Message) -> Tuple[Optional[Message], float]:
        """Deliver ``message`` synchronously and return ``(reply, rtt)``.

        ``rtt`` is the simulated round-trip time (request latency plus, when
        the handler returned a reply, the reply's latency).  Raises
        :class:`DeliveryError` when the destination is not registered.
        """
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise DeliveryError(
                f"no endpoint registered for peer {message.dst}")
        if self._partitioned(message.src, message.dst):
            raise DeliveryError(
                f"peer {message.dst} unreachable from {message.src}: "
                f"network partition")
        self._account(message)
        elapsed = self.latency.delay(self.rng, message.src, message.dst,
                                     message.size_bytes())
        reply = endpoint.on_message(message)
        if reply is not None:
            self._account(reply)
            elapsed += self.latency.delay(self.rng, reply.src, reply.dst,
                                          reply.size_bytes())
        return reply, elapsed

    def deliver_hop(self, src: int, dst: int, size: int) -> float:
        """Fast path for one routing hop: account + latency, no objects.

        ``LookupHop`` handlers are no-ops (routing decisions live in the
        ring, not the endpoint), so a full :meth:`request` — Message
        construction, handler dispatch, reply bookkeeping — is pure
        overhead per hop.  This delivers the same observable effects
        (byte/message accounting against the precomputed wire ``size``,
        one latency draw from the same RNG stream, churn/partition
        failure semantics) and returns the one-way delay.
        """
        if dst not in self._endpoints:
            raise DeliveryError(f"no endpoint registered for peer {dst}")
        if self._partitioned(src, dst):
            raise DeliveryError(
                f"peer {dst} unreachable from {src}: network partition")
        self._account_raw("LookupHop", dst, size)
        return self.latency.delay(self.rng, src, dst, size)

    def begin_hop_bulk(self):
        """Live-endpoint view for bulk hop accounting, or ``None``.

        Bulk mode lets a batched routing round accumulate its
        ``LookupHop`` deliveries locally and settle them in one
        :meth:`flush_hop_bulk` call, skipping the per-hop
        :meth:`deliver_hop` overhead.  It is only offered when per-hop
        delivery has no observable effect beyond accounting: constant
        latency (the per-hop delay draw consumes no randomness and its
        value is discarded by batched routing) and no active partition
        (so the only failure mode is an unregistered destination, which
        the caller checks against the returned view).  Totals are
        identical to per-hop delivery in every case.
        """
        if self._partition_of is not None:
            return None
        if not isinstance(self.latency, ConstantLatency):
            return None
        return self._endpoints.keys()

    def flush_hop_bulk(self, counts: Dict[int, list]) -> None:
        """Settle hops accumulated under :meth:`begin_hop_bulk`.

        ``counts`` maps destination id to ``[messages, bytes]``.  The
        effect equals calling :meth:`deliver_hop` once per message.
        """
        metrics = self.simulator.metrics
        if metrics.generation != self._counter_gen:
            self._counter_cache = {}
            self._counter_gen = metrics.generation
            self._total_counters = (metrics.counter("net.msgs.sent"),
                                    metrics.counter("net.bytes.sent"))
        counters = self._counter_cache.get("LookupHop")
        if counters is None:
            counters = (metrics.counter("net.msgs.sent.LookupHop"),
                        metrics.counter("net.bytes.sent.LookupHop"))
            self._counter_cache["LookupHop"] = counters
        bytes_in = self.bytes_in
        msgs_in = self.msgs_in
        total_msgs = 0
        total_bytes = 0
        # Direct indexing: every destination came from the live-endpoint
        # view, and register() seeds both load dicts for live peers.
        for dst, (msgs, size) in counts.items():
            total_msgs += msgs
            total_bytes += size
            bytes_in[dst] += size
            msgs_in[dst] += msgs
        msgs_total, bytes_total = self._total_counters
        msgs_total.value += float(total_msgs)
        bytes_total.value += total_bytes
        counters[0].value += float(total_msgs)
        counters[1].value += total_bytes

    def send_local(self, message: Message) -> Optional[Message]:
        """Loopback delivery: no bytes accounted, no latency.

        Used when a peer addresses itself (the DHT frequently resolves a key
        to the requesting peer); real systems short-circuit this in memory.
        """
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise DeliveryError(
                f"no endpoint registered for peer {message.dst}")
        return endpoint.on_message(message)

    # ------------------------------------------------------------------
    # Asynchronous (event-loop) delivery
    # ------------------------------------------------------------------

    def send_async(self, message: Message,
                   on_reply: Optional[Callable[[Message], None]] = None,
                   on_drop: Optional[Callable[[Message], None]] = None,
                   on_delivered: Optional[
                       Callable[[Message, Optional[Message]], None]] = None,
                   on_overflow: Optional[
                       Callable[[Message], None]] = None) -> None:
        """Schedule delivery of ``message`` through the event queue.

        If the destination handler returns a reply and ``on_reply`` is
        given, the reply is scheduled back to the caller after its own
        latency.  If the destination vanished by delivery time (churn),
        ``on_drop`` is invoked instead of raising.  ``on_delivered`` is
        invoked right after the destination handler ran, with the reply
        it returned (not yet delivered back) — the hook one-way
        protocols use to learn their message arrived.

        With the service model active (:meth:`configure_service_model`)
        the handler runs only after the message waited in the
        destination's bounded queue and was serviced; a full queue
        instead invokes ``on_overflow`` after one return network delay
        (the drop signal travels back like an ack would — never
        instantly).

        The reply leg is symmetric: if the *requester* unregisters while
        the reply is in flight, the reply is dropped (``on_drop`` with
        the original request) instead of resurrecting the departed peer.
        """
        self._account(message)
        delay = self.latency.delay(self.rng, message.src, message.dst,
                                   message.size_bytes())

        def deliver_reply(reply: Message) -> None:
            if (reply.dst not in self._endpoints
                    or self._partitioned(reply.src, reply.dst)):
                if on_drop is not None:
                    on_drop(message)
                return
            on_reply(reply)

        def process() -> None:
            # Re-fetched: the endpoint may have departed while the
            # message waited in its service queue.
            endpoint = self._endpoints.get(message.dst)
            if endpoint is None:
                if on_drop is not None:
                    on_drop(message)
                return
            reply = endpoint.on_message(message)
            if reply is not None and on_reply is not None:
                self._account(reply)
                reply_delay = self.latency.delay(
                    self.rng, reply.src, reply.dst, reply.size_bytes())
                self.simulator.schedule(reply_delay,
                                        lambda: deliver_reply(reply))
            if on_delivered is not None:
                on_delivered(message, reply)

        def overflow() -> None:
            if on_overflow is None:
                return
            nack_delay = self.latency.delay(self.rng, message.dst,
                                            message.src, 0)
            self.simulator.schedule(nack_delay,
                                    lambda: on_overflow(message))

        def deliver() -> None:
            if (message.dst not in self._endpoints
                    or self._partitioned(message.src, message.dst)):
                if on_drop is not None:
                    on_drop(message)
                return
            queue = self._service_queue_for(message.dst)
            if queue is None:
                process()
            else:
                queue.offer(process, overflow)

        self.simulator.schedule(delay, deliver)

    def request_async(self, message: Message,
                      timeout: Optional[float] = None) -> Future:
        """Send ``message`` and return a future for its outcome.

        The future resolves with a :class:`RequestOutcome`:

        * on reply arrival (``status="ok"``, ``reply`` set);
        * on delivery, when the handler returned no reply — one-way
          traffic (``status="ok"``, ``reply=None``);
        * when the destination unregistered before delivery
          (``status="dropped"``) — churn surfaced to the caller instead
          of a :class:`DeliveryError`;
        * when the destination's bounded service queue was full
          (``status="overflow"``) — congestion; the caller may
          retransmit;
        * after ``timeout`` virtual seconds without any of the above
          (``status="timeout"``); a reply arriving later is discarded.

        Per-destination in-flight counts (:meth:`inflight`) cover the
        send-to-resolution window.
        """
        future = Future()
        request_id = next(self._request_ids)
        sent_at = self.simulator.now
        dst = message.dst
        self._inflight[dst] = self._inflight.get(dst, 0) + 1
        timeout_event = [None]

        def finish(status: str, reply: Optional[Message]) -> None:
            if future.done:
                return          # late reply after timeout/drop
            remaining = self._inflight.get(dst, 0) - 1
            if remaining > 0:
                self._inflight[dst] = remaining
            else:
                self._inflight.pop(dst, None)
            if timeout_event[0] is not None:
                timeout_event[0].cancel()
            future.resolve(RequestOutcome(
                request_id=request_id, status=status, request=message,
                reply=reply, rtt=self.simulator.now - sent_at))

        self.send_async(
            message,
            on_reply=lambda reply: finish("ok", reply),
            on_drop=lambda _message: finish("dropped", None),
            on_delivered=lambda _message, reply:
                finish("ok", None) if reply is None else None,
            on_overflow=lambda _message: finish("overflow", None))
        if timeout is not None and timeout > 0:
            timeout_event[0] = self.simulator.schedule(
                timeout, lambda: finish("timeout", None))
        return future


#: Backwards-compatible alias: the simulated transport was simply called
#: ``Transport`` before the backend seam was extracted.
Transport = SimTransport

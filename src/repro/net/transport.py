"""The simulated transport.

Two delivery modes are offered:

* :meth:`Transport.request` — synchronous request/response.  The handler of
  the destination endpoint runs immediately; bytes are accounted in both
  directions and the round-trip latency is *returned* so callers can
  accumulate per-operation virtual time without running the event loop.
  The distributed-IR layers (L3/L4) use this mode: their protocols are
  strictly request/reply and the interesting measurements are bytes and
  message counts.

* :meth:`Transport.send_async` — schedules delivery through the simulator's
  event queue after a sampled latency.  The DHT congestion-control
  experiment (E8) uses this mode, where queueing effects matter.

Every byte is accounted twice over: globally per message kind
(``net.bytes.sent.<kind>``) and per destination peer (for load-balance
metrics).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Protocol, Tuple

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.sim.events import Simulator

__all__ = ["DeliveryError", "Endpoint", "Transport"]


class DeliveryError(Exception):
    """Raised when a message is addressed to an unknown or dead endpoint."""


class Endpoint(Protocol):
    """Anything attachable to the transport.

    ``on_message`` may return a reply message (or ``None`` for one-way
    traffic).
    """

    def on_message(self, message: Message) -> Optional[Message]:
        """Handle one inbound message, optionally returning a reply."""
        ...


class Transport:
    """Point-to-point messaging between registered endpoints."""

    def __init__(self, simulator: Simulator,
                 latency: Optional[LatencyModel] = None,
                 rng: Optional[random.Random] = None):
        self.simulator = simulator
        self.latency = latency if latency is not None else ConstantLatency()
        self.rng = rng if rng is not None else random.Random(0)
        self._endpoints: Dict[int, Endpoint] = {}
        #: Per-peer inbound traffic, for load-balance experiments.
        self.bytes_in: Dict[int, int] = {}
        self.msgs_in: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, peer_id: int, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` under ``peer_id``; replaces any previous one."""
        self._endpoints[peer_id] = endpoint
        self.bytes_in.setdefault(peer_id, 0)
        self.msgs_in.setdefault(peer_id, 0)

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (e.g. on churn departure)."""
        self._endpoints.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        """True if a live endpoint is attached under ``peer_id``."""
        return peer_id in self._endpoints

    def endpoints(self) -> Tuple[int, ...]:
        """Ids of all registered endpoints."""
        return tuple(self._endpoints.keys())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(self, message: Message) -> None:
        size = message.size_bytes()
        metrics = self.simulator.metrics
        metrics.counter("net.msgs.sent").increment()
        metrics.counter(f"net.msgs.sent.{message.kind}").increment()
        metrics.counter("net.bytes.sent").increment(size)
        metrics.counter(f"net.bytes.sent.{message.kind}").increment(size)
        self.bytes_in[message.dst] = self.bytes_in.get(message.dst, 0) + size
        self.msgs_in[message.dst] = self.msgs_in.get(message.dst, 0) + 1

    def reset_load_counters(self) -> None:
        """Zero the per-peer inbound counters (between experiment phases)."""
        for peer_id in self.bytes_in:
            self.bytes_in[peer_id] = 0
        for peer_id in self.msgs_in:
            self.msgs_in[peer_id] = 0

    # ------------------------------------------------------------------
    # Synchronous request/response
    # ------------------------------------------------------------------

    def request(self, message: Message) -> Tuple[Optional[Message], float]:
        """Deliver ``message`` synchronously and return ``(reply, rtt)``.

        ``rtt`` is the simulated round-trip time (request latency plus, when
        the handler returned a reply, the reply's latency).  Raises
        :class:`DeliveryError` when the destination is not registered.
        """
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise DeliveryError(
                f"no endpoint registered for peer {message.dst}")
        self._account(message)
        elapsed = self.latency.delay(self.rng, message.src, message.dst,
                                     message.size_bytes())
        reply = endpoint.on_message(message)
        if reply is not None:
            self._account(reply)
            elapsed += self.latency.delay(self.rng, reply.src, reply.dst,
                                          reply.size_bytes())
        return reply, elapsed

    def send_local(self, message: Message) -> Optional[Message]:
        """Loopback delivery: no bytes accounted, no latency.

        Used when a peer addresses itself (the DHT frequently resolves a key
        to the requesting peer); real systems short-circuit this in memory.
        """
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise DeliveryError(
                f"no endpoint registered for peer {message.dst}")
        return endpoint.on_message(message)

    # ------------------------------------------------------------------
    # Asynchronous (event-loop) delivery
    # ------------------------------------------------------------------

    def send_async(self, message: Message,
                   on_reply: Optional[Callable[[Message], None]] = None,
                   on_drop: Optional[Callable[[Message], None]] = None) -> None:
        """Schedule delivery of ``message`` through the event queue.

        If the destination handler returns a reply and ``on_reply`` is
        given, the reply is scheduled back to the caller after its own
        latency.  If the destination vanished by delivery time (churn),
        ``on_drop`` is invoked instead of raising.
        """
        self._account(message)
        delay = self.latency.delay(self.rng, message.src, message.dst,
                                   message.size_bytes())

        def deliver() -> None:
            endpoint = self._endpoints.get(message.dst)
            if endpoint is None:
                if on_drop is not None:
                    on_drop(message)
                return
            reply = endpoint.on_message(message)
            if reply is not None and on_reply is not None:
                self._account(reply)
                reply_delay = self.latency.delay(
                    self.rng, reply.src, reply.dst, reply.size_bytes())
                self.simulator.schedule(reply_delay,
                                        lambda: on_reply(reply))

        self.simulator.schedule(delay, deliver)

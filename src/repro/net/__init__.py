"""Transport layer (L1 of the AlvisP2P architecture).

Point-to-point messaging between peers with:

* an explicit per-message **byte-size model** (:mod:`repro.net.message`) so
  that bandwidth experiments measure realistic wire sizes,
* pluggable **latency models** (:mod:`repro.net.latency`),
* a **backend seam** (:class:`TransportBackend`) with two implementations:
  the default discrete-event :class:`SimTransport`
  (:mod:`repro.net.transport`) and a real asyncio/UDP backend
  (:mod:`repro.net.udp`), and
* a size-exact **wire codec** (:mod:`repro.net.wire`) shared by the real
  backend and the cluster handshake.

``Transport`` remains an alias for :class:`SimTransport` so existing
call-sites keep working; :class:`~repro.net.udp.UdpTransport` is imported
lazily by the cluster layer (it pulls in asyncio machinery the simulator
never needs).
"""

from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import HEADER_BYTES, Message, encoded_size
from repro.net.transport import (
    DeliveryError,
    Endpoint,
    RequestOutcome,
    SimTransport,
    Transport,
    TransportBackend,
)

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "HEADER_BYTES",
    "Message",
    "encoded_size",
    "DeliveryError",
    "Endpoint",
    "RequestOutcome",
    "SimTransport",
    "Transport",
    "TransportBackend",
]

"""Transport layer (L1 of the AlvisP2P architecture).

Simulated point-to-point messaging between peers with:

* an explicit per-message **byte-size model** (:mod:`repro.net.message`) so
  that bandwidth experiments measure realistic wire sizes,
* pluggable **latency models** (:mod:`repro.net.latency`), and
* a **transport** that accounts every byte by message type
  (:mod:`repro.net.transport`).
"""

from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import HEADER_BYTES, Message, encoded_size
from repro.net.transport import DeliveryError, Endpoint, Transport

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "HEADER_BYTES",
    "Message",
    "encoded_size",
    "DeliveryError",
    "Endpoint",
    "Transport",
]

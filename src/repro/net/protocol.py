"""Message kinds of the distributed IR protocol (layers 3 and 4).

Centralizing the kind strings keeps the traffic accounting legible: the
bandwidth benchmark (E2) reports bytes *per message kind*, which is how the
companion papers break their numbers down (routing vs. retrieval vs.
indexing traffic).

The constants live in the :mod:`repro.net` layer because a message kind is
a wire-level concept: the binary codec (:mod:`repro.net.wire`) keys its
per-kind schemas and tag table on these strings, and the layering rule
(``repro lint``'s RPL050) forbids the codec from importing upward into
``core``.  :mod:`repro.core.protocol` re-exports everything for the
historical import path.
"""

from __future__ import annotations

__all__ = [
    "LOOKUP_HOP",
    "DF_PUBLISH",
    "DF_GET",
    "DF_REPLY",
    "COLLECTION_PUBLISH",
    "COLLECTION_GET",
    "COLLECTION_REPLY",
    "PUBLISH_KEY",
    "PUBLISH_ACK",
    "EXPAND_NOTIFY",
    "PROBE_KEY",
    "PROBE_REPLY",
    "PROBE_BATCH",
    "PROBE_BATCH_REPLY",
    "FEEDBACK",
    "CONTRIBUTORS_GET",
    "CONTRIBUTORS_REPLY",
    "HARVEST_KEY",
    "HARVEST_REPLY",
    "REFINE_QUERY",
    "REFINE_REPLY",
    "DOC_FETCH",
    "DOC_REPLY",
    "RETRACT_DOC",
    "HANDOVER",
    "REPLICA_PUSH",
    "INDEXING_KINDS",
    "RETRIEVAL_KINDS",
]

# Overlay routing -------------------------------------------------------
LOOKUP_HOP = "LookupHop"

# Global statistics -----------------------------------------------------
DF_PUBLISH = "DfPublish"            #: {term: local df} batch to term owners
DF_GET = "DfGet"                    #: request global dfs for a term batch
DF_REPLY = "DfReply"
COLLECTION_PUBLISH = "CollectionPublish"  #: (num docs, total length)
COLLECTION_GET = "CollectionGet"
COLLECTION_REPLY = "CollectionReply"

# Index construction ----------------------------------------------------
PUBLISH_KEY = "PublishKey"          #: contributor -> responsible peer
PUBLISH_ACK = "PublishAck"
EXPAND_NOTIFY = "ExpandNotify"      #: responsible -> contributors (HDK)

# Retrieval -------------------------------------------------------------
PROBE_KEY = "ProbeKey"              #: lattice probe
PROBE_REPLY = "ProbeReply"
PROBE_BATCH = "ProbeBatch"          #: all of a frontier's probes for one owner
PROBE_BATCH_REPLY = "ProbeBatchReply"
FEEDBACK = "PopularityFeedback"     #: query peer -> key owners (QDI)

# On-demand indexing (QDI) ----------------------------------------------
CONTRIBUTORS_GET = "ContributorsGet"
CONTRIBUTORS_REPLY = "ContributorsReply"
HARVEST_KEY = "HarvestKey"
HARVEST_REPLY = "HarvestReply"

# Two-step refinement and document access -------------------------------
REFINE_QUERY = "RefineQuery"
REFINE_REPLY = "RefineReply"
DOC_FETCH = "DocFetch"
DOC_REPLY = "DocReply"

# Document lifecycle ------------------------------------------------------
RETRACT_DOC = "RetractDoc"          #: owner peer -> key peers, on unpublish

# Churn -----------------------------------------------------------------
HANDOVER = "IndexHandover"

# Replication (crash fault tolerance) -----------------------------------
REPLICA_PUSH = "ReplicaPush"        #: owner -> successor, full entry batch

#: Kind groups used by the bandwidth breakdowns.
INDEXING_KINDS = (DF_PUBLISH, DF_GET, DF_REPLY, COLLECTION_PUBLISH,
                  COLLECTION_GET, COLLECTION_REPLY, PUBLISH_KEY,
                  PUBLISH_ACK, EXPAND_NOTIFY, CONTRIBUTORS_GET,
                  CONTRIBUTORS_REPLY, HARVEST_KEY, HARVEST_REPLY,
                  RETRACT_DOC)
RETRIEVAL_KINDS = (PROBE_KEY, PROBE_REPLY, PROBE_BATCH,
                   PROBE_BATCH_REPLY, FEEDBACK, REFINE_QUERY,
                   REFINE_REPLY, LOOKUP_HOP)

"""Latency models for the simulated transport.

The demo ran across the Internet between EPFL and Zagreb; wide-area latency
is well approximated by a log-normal distribution.  Constant and uniform
models are provided for unit tests and for experiments where latency is not
the variable under study.
"""

from __future__ import annotations

import abc
import math
import random

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency",
           "LogNormalLatency"]


class LatencyModel(abc.ABC):
    """Maps a (src, dst, size) triple to a one-way delay in virtual seconds."""

    @abc.abstractmethod
    def delay(self, rng: random.Random, src: int, dst: int,
              size_bytes: int) -> float:
        """Return the one-way delay for a message of ``size_bytes``."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``seconds`` — the default for tests."""

    def __init__(self, seconds: float = 0.05):
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.seconds = seconds

    def delay(self, rng: random.Random, src: int, dst: int,
              size_bytes: int) -> float:
        return self.seconds


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]`` seconds."""

    def __init__(self, low: float = 0.01, high: float = 0.1):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        self.low = low
        self.high = high

    def delay(self, rng: random.Random, src: int, dst: int,
              size_bytes: int) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Log-normal propagation delay plus a bandwidth-proportional term.

    ``median_seconds`` sets the propagation median; ``sigma`` the spread.
    ``bytes_per_second`` adds serialization delay so that large posting-list
    transfers are visibly slower than small control messages — this is what
    makes the single-term baseline's latency blow up along with its
    bandwidth in experiment E2.
    """

    def __init__(self, median_seconds: float = 0.08, sigma: float = 0.5,
                 bytes_per_second: float = 1_000_000.0):
        if median_seconds <= 0:
            raise ValueError(
                f"median_seconds must be > 0, got {median_seconds}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if bytes_per_second <= 0:
            raise ValueError(
                f"bytes_per_second must be > 0, got {bytes_per_second}")
        self.mu = math.log(median_seconds)
        self.sigma = sigma
        self.bytes_per_second = bytes_per_second

    def delay(self, rng: random.Random, src: int, dst: int,
              size_bytes: int) -> float:
        propagation = rng.lognormvariate(self.mu, self.sigma)
        serialization = size_bytes / self.bytes_per_second
        return propagation + serialization

"""Real-network transport backend: asyncio datagrams over UDP.

A :class:`UdpTransport` implements the :class:`~repro.net.transport.
TransportBackend` protocol over real localhost/LAN sockets, so the same
``QueryEngine`` / ``AsyncQueryRuntime`` code that drives the simulator
drives OS processes instead (see :mod:`repro.cluster`).  Semantics
mirror :class:`~repro.net.transport.SimTransport`:

* **request-id correlation** — every outbound request carries its
  message id; replies carry it back in ``reply_to`` and resolve the
  pending entry.  One-way messages are confirmed with a wire-level
  ``__ack__`` control datagram (the real-network analogue of the
  simulator's ``on_delivered`` hook), so ``request_async`` resolves
  ``("ok", None)`` for them exactly as on the simulator.
* **failures surface, never raise** — :meth:`request_async` resolves
  ``"dropped"`` for unroutable or unknown peers (the receiving host
  nacks with ``__err__``) and ``"timeout"`` after the per-request
  timeout; only the synchronous :meth:`request` raises
  :class:`DeliveryError`, as the simulator does.
* **byte accounting** — protocol messages are accounted into the same
  ``net.msgs.sent`` / ``net.bytes.sent[.kind]`` counters with their
  *modelled* sizes (the codec is size-exact, see
  :mod:`repro.net.wire`), so ``AlvisNetwork.bytes_sent_total`` works
  unchanged.  This transport accounts every protocol message it sends
  plus every reply it receives — the same totals the simulator's single
  global transport records for the queries issued here.  Wire-internal
  control traffic (acks, nacks, the cluster handshake) is tallied
  separately in ``wire_bytes_sent``/``wire_bytes_received``.

All transport state is owned by a dedicated asyncio event-loop thread;
public methods may be called from any *other* thread (the synchronous
``request``/``send_local`` bridge posts the work to the loop and blocks
on a threading event).  Malformed datagrams — truncated, unknown kind,
oversized — are counted and dropped, degrading into clean timeout/drop
outcomes for the requester rather than crashing the peer.

Deliberate divergences from the simulator, all of which real networks
force: ``request_async`` without an explicit timeout uses
``default_timeout`` instead of waiting forever (a lost datagram would
otherwise leak its pending entry), ``send_async`` maps its internal
timeout onto ``on_drop``, and the bounded-service-queue congestion
model does not exist (real sockets drop instead of nacking overflow).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.net import wire
from repro.net.message import Message
from repro.net.transport import DeliveryError, Endpoint, RequestOutcome
from repro.sim.metrics import MetricsRegistry
from repro.sim.procs import Future

__all__ = ["UdpTransport"]

#: Callback handling one control datagram: ``(payload, addr)`` in, an
#: optional ``(kind, payload)`` reply out (sent back to ``addr``).
ControlHandler = Callable[[Dict[str, Any], Tuple[str, int]],
                          Optional[Tuple[str, Mapping[str, Any]]]]


class _Pending:
    """One correlated outbound request awaiting its resolution."""

    __slots__ = ("message", "on_reply", "on_drop", "on_delivered",
                 "on_timeout", "timer")

    def __init__(self, message, on_reply, on_drop, on_delivered,
                 on_timeout):
        self.message = message
        self.on_reply = on_reply
        self.on_drop = on_drop
        self.on_delivered = on_delivered
        self.on_timeout = on_timeout
        self.timer = None


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, owner: "UdpTransport"):
        self._owner = owner

    def datagram_received(self, data: bytes,
                          addr: Tuple[str, int]) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        self._owner.socket_errors += 1


class UdpTransport:
    """A :class:`TransportBackend` over asyncio UDP sockets."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 default_timeout: float = 5.0,
                 bind_host: str = "127.0.0.1", bind_port: int = 0):
        if default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {default_timeout}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_timeout = default_timeout
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._endpoints: Dict[int, Endpoint] = {}
        #: peer id -> (host, port) of the process hosting it.
        self._routes: Dict[int, Tuple[str, int]] = {}
        self.bytes_in: Dict[int, int] = {}
        self.msgs_in: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        self._pending: Dict[int, _Pending] = {}
        self._control_handlers: Dict[str, ControlHandler] = {}
        #: Invoked on the loop thread after datagram-driven progress;
        #: the realtime kernel hooks this to wake its event loop.
        self.on_activity: Optional[Callable[[], None]] = None
        # Raw socket-level counters (include control traffic).
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.decode_errors = 0
        self.encode_errors = 0
        self.handler_errors = 0
        self.socket_errors = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread_id: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._udp = None
        self._local_address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "UdpTransport":
        """Bind the socket and start the event-loop thread (idempotent)."""
        if self._loop is not None:
            return self
        ready = threading.Event()
        failure: list = []
        self._thread = threading.Thread(
            target=self._serve, args=(ready, failure),
            name="udp-transport", daemon=True)
        self._thread.start()
        if not ready.wait(10.0) or self._udp is None:
            raise RuntimeError(
                f"UDP transport failed to start: {failure or 'timeout'}")
        return self

    def _serve(self, ready: threading.Event, failure: list) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._loop_thread_id = threading.get_ident()

        async def _open() -> None:
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self),
                local_addr=(self._bind_host, self._bind_port))
            self._udp = transport
            self._local_address = transport.get_extra_info("sockname")[:2]

        try:
            loop.run_until_complete(_open())
        except OSError as error:
            failure.append(error)
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            if self._udp is not None:
                self._udp.close()
            loop.close()

    def close(self) -> None:
        """Stop the loop thread and release the socket."""
        loop = self._loop
        if loop is None:
            return

        def stopper() -> None:
            for entry in self._pending.values():
                if entry.timer is not None:
                    entry.timer.cancel()
            self._pending.clear()
            loop.stop()

        try:
            loop.call_soon_threadsafe(stopper)
        except RuntimeError:
            pass                     # loop already closed
        if self._thread is not None:
            self._thread.join(5.0)
        self._loop = None
        self._thread = None

    @property
    def local_address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of this transport's socket."""
        if self._local_address is None:
            raise RuntimeError("transport not started")
        return self._local_address

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The transport's event loop (for the realtime kernel)."""
        if self._loop is None:
            raise RuntimeError("transport not started")
        return self._loop

    def call_in_loop(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread (immediately if already there)."""
        if threading.get_ident() == self._loop_thread_id:
            fn()
        else:
            self.loop.call_soon_threadsafe(fn)

    def _run_sync(self, fn: Callable[[], Any],
                  timeout: float = 30.0) -> Any:
        """Run ``fn`` on the loop thread and block for its result."""
        if threading.get_ident() == self._loop_thread_id:
            return fn()
        done = threading.Event()
        box: list = []

        def work() -> None:
            try:
                box.append((True, fn()))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box.append((False, error))
            done.set()

        self.loop.call_soon_threadsafe(work)
        if not done.wait(timeout):
            raise DeliveryError("transport loop unresponsive")
        ok, value = box[0]
        if not ok:
            raise value
        return value

    # ------------------------------------------------------------------
    # Membership and routing
    # ------------------------------------------------------------------

    def register(self, peer_id: int, endpoint: Endpoint) -> None:
        """Attach a locally-hosted endpoint under ``peer_id``."""
        self._endpoints[peer_id] = endpoint
        self.bytes_in.setdefault(peer_id, 0)
        self.msgs_in.setdefault(peer_id, 0)

    def unregister(self, peer_id: int) -> None:
        self._endpoints.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        return peer_id in self._endpoints

    def endpoints(self) -> Tuple[int, ...]:
        return tuple(self._endpoints.keys())

    def add_route(self, peer_id: int, addr: Tuple[str, int]) -> None:
        """Map a remotely-hosted peer id to its process's address."""
        self._routes[peer_id] = (addr[0], int(addr[1]))

    def routes(self) -> Dict[int, Tuple[str, int]]:
        return dict(self._routes)

    # ------------------------------------------------------------------
    # Accounting (same counter names as the simulated transport)
    # ------------------------------------------------------------------

    def _account(self, message: Message) -> None:
        size = message.size_bytes()
        self.metrics.counter("net.msgs.sent").increment()
        self.metrics.counter(f"net.msgs.sent.{message.kind}").increment()
        self.metrics.counter("net.bytes.sent").increment(size)
        self.metrics.counter(f"net.bytes.sent.{message.kind}").increment(size)
        self.bytes_in[message.dst] = self.bytes_in.get(message.dst, 0) + size
        self.msgs_in[message.dst] = self.msgs_in.get(message.dst, 0) + 1

    def reset_load_counters(self) -> None:
        self.bytes_in = {peer_id: 0 for peer_id in self._endpoints}
        self.msgs_in = {peer_id: 0 for peer_id in self._endpoints}

    def inflight(self, peer_id: int) -> int:
        return self._inflight.get(peer_id, 0)

    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    # Congestion/service-queue API parity (no queueing model on UDP:
    # the real network drops instead of nacking overflow).
    @property
    def service_model_active(self) -> bool:
        return False

    def service_queue_length(self, peer_id: int) -> int:
        return 0

    def queue_drops_total(self) -> int:
        return 0

    def service_stats(self) -> Dict[str, int]:
        return {"arrived": 0, "completed": 0, "dropped": 0, "queued": 0}

    # ------------------------------------------------------------------
    # Control-plane hooks (cluster bootstrap handshake)
    # ------------------------------------------------------------------

    def on_control(self, kind: str, handler: ControlHandler) -> None:
        """Install a handler for one wire-control kind (``__hello__``…)."""
        self._control_handlers[kind] = handler

    def send_control(self, kind: str, payload: Mapping[str, Any],
                     addr: Tuple[str, int]) -> None:
        """Fire-and-forget one control datagram to ``addr``."""
        message = Message(src=0, dst=0, kind=kind, payload=dict(payload))
        self.call_in_loop(lambda: self._send_datagram(message, addr))

    # ------------------------------------------------------------------
    # Datagram plumbing (loop thread only)
    # ------------------------------------------------------------------

    def _send_datagram(self, message: Message,
                       addr: Tuple[str, int]) -> None:
        try:
            data = wire.encode(message)
        except wire.WireError:
            self.encode_errors += 1
            return
        self._udp.sendto(data, addr)
        self.wire_bytes_sent += len(data)
        self.datagrams_sent += 1

    def _notify_activity(self) -> None:
        if self.on_activity is not None:
            self.on_activity()

    def _on_datagram(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.datagrams_received += 1
        self.wire_bytes_received += len(data)
        try:
            message = wire.decode(data)
        except wire.WireError:
            # Truncated / unknown-kind / oversized datagrams are counted
            # and dropped; the requester's timeout turns this into a
            # clean RequestOutcome instead of a crash.
            self.decode_errors += 1
            return
        if message.reply_to is not None:
            self._resolve_reply(message)
            return
        handler = self._control_handlers.get(message.kind)
        if handler is not None:
            result = handler(dict(message.payload), addr)
            if result is not None:
                kind, payload = result
                self._send_datagram(
                    Message(src=0, dst=0, kind=kind, payload=dict(payload)),
                    addr)
            return
        self._serve_request(message, addr)

    def _resolve_reply(self, message: Message) -> None:
        entry = self._pending.pop(message.reply_to, None)
        if entry is None:
            return                  # late reply after timeout, or stray
        if entry.timer is not None:
            entry.timer.cancel()
        if message.kind == wire.ACK:
            if entry.on_delivered is not None:
                entry.on_delivered(entry.message, None)
        elif message.kind == wire.ERR:
            if entry.on_drop is not None:
                entry.on_drop(entry.message)
        else:
            self._account(message)  # the reply leg, as the simulator does
            if entry.on_reply is not None:
                entry.on_reply(message)
            elif entry.on_delivered is not None:
                entry.on_delivered(entry.message, message)
        self._notify_activity()

    def _serve_request(self, message: Message,
                       addr: Tuple[str, int]) -> None:
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            # Unknown or departed peer: nack so the requester resolves
            # "dropped" immediately instead of waiting out its timeout.
            self._send_datagram(
                Message(src=message.dst, dst=message.src, kind=wire.ERR,
                        payload={"error": "unknown-peer"},
                        reply_to=message.message_id), addr)
            return
        self._account(message)      # host side: inbound request traffic
        try:
            reply = endpoint.on_message(message)
        except Exception:
            self.handler_errors += 1
            self._send_datagram(
                Message(src=message.dst, dst=message.src, kind=wire.ERR,
                        payload={"error": "handler-error"},
                        reply_to=message.message_id), addr)
            return
        if reply is None:
            self._send_datagram(
                Message(src=message.dst, dst=message.src, kind=wire.ACK,
                        payload={}, reply_to=message.message_id), addr)
        else:
            self._account(reply)    # host side: the reply it sends
            self._send_datagram(reply, addr)
        self._notify_activity()

    # ------------------------------------------------------------------
    # Asynchronous delivery (TransportBackend surface)
    # ------------------------------------------------------------------

    def _send_async_in_loop(self, message: Message, on_reply, on_drop,
                            on_delivered, on_timeout,
                            timeout: float) -> None:
        dst = message.dst
        endpoint = self._endpoints.get(dst)
        if endpoint is not None:
            # Locally-hosted destination: deliver in process, but still
            # account both legs (the simulator charges all non-loopback
            # traffic; cross-backend byte parity depends on this).
            self._account(message)
            try:
                reply = endpoint.on_message(message)
            except Exception:
                self.handler_errors += 1
                self._loop.call_soon(lambda: self._safe(on_drop, message))
                return
            if reply is not None:
                self._account(reply)

            def deliver() -> None:
                if reply is not None and on_reply is not None:
                    on_reply(reply)
                if on_delivered is not None:
                    on_delivered(message, reply)
                self._notify_activity()

            self._loop.call_soon(deliver)
            return
        addr = self._routes.get(dst)
        if addr is None:
            self._loop.call_soon(lambda: self._safe(on_drop, message))
            return
        self._account(message)
        entry = _Pending(message, on_reply, on_drop, on_delivered,
                         on_timeout)
        self._pending[message.message_id] = entry
        entry.timer = self._loop.call_later(
            timeout, lambda: self._expire(message.message_id))
        self._send_datagram(message, addr)

    @staticmethod
    def _safe(callback, *args) -> None:
        if callback is not None:
            callback(*args)

    def _expire(self, message_id: int) -> None:
        entry = self._pending.pop(message_id, None)
        if entry is None:
            return
        if entry.on_timeout is not None:
            entry.on_timeout(entry.message)
        self._notify_activity()

    def send_async(self, message: Message,
                   on_reply: Optional[Callable[[Message], None]] = None,
                   on_drop: Optional[Callable[[Message], None]] = None,
                   on_delivered: Optional[
                       Callable[[Message, Optional[Message]], None]] = None,
                   on_overflow: Optional[
                       Callable[[Message], None]] = None) -> None:
        """Correlated async delivery; lost datagrams surface as
        ``on_drop`` after ``default_timeout`` (real sockets cannot wait
        forever).  ``on_overflow`` never fires: UDP has no bounded
        service queue to nack from."""
        del on_overflow
        self.call_in_loop(lambda: self._send_async_in_loop(
            message, on_reply, on_drop, on_delivered, on_timeout=on_drop,
            timeout=self.default_timeout))

    def request_async(self, message: Message,
                      timeout: Optional[float] = None) -> Future:
        """Send ``message`` and return a future for its outcome.

        Mirrors the simulated transport: resolves ``"ok"`` on a reply
        (or wire-level ack for one-way traffic), ``"dropped"`` for
        unroutable/unknown peers, ``"timeout"`` after ``timeout``
        (``default_timeout`` when omitted — a lost datagram must not
        pend forever) — and never raises.  The future resolves on the
        transport's loop thread.
        """
        future = Future()
        deadline = (timeout if timeout is not None and timeout > 0
                    else self.default_timeout)

        def work() -> None:
            dst = message.dst
            self._inflight[dst] = self._inflight.get(dst, 0) + 1
            sent_at = time.monotonic()

            def finish(status: str, reply: Optional[Message]) -> None:
                if future.done:
                    return
                remaining = self._inflight.get(dst, 0) - 1
                if remaining > 0:
                    self._inflight[dst] = remaining
                else:
                    self._inflight.pop(dst, None)
                future.resolve(RequestOutcome(
                    request_id=message.message_id, status=status,
                    request=message, reply=reply,
                    rtt=time.monotonic() - sent_at))

            self._send_async_in_loop(
                message,
                on_reply=lambda reply: finish("ok", reply),
                on_drop=lambda _message: finish("dropped", None),
                on_delivered=lambda _message, reply:
                    finish("ok", None) if reply is None else None,
                on_timeout=lambda _message: finish("timeout", None),
                timeout=deadline)

        self.call_in_loop(work)
        return future

    # ------------------------------------------------------------------
    # Synchronous compatibility path
    # ------------------------------------------------------------------

    def request(self, message: Message) -> Tuple[Optional[Message], float]:
        """Deliver ``message`` and block for ``(reply, rtt)``.

        Raises :class:`DeliveryError` for unroutable destinations, churn
        nacks and timeouts — exactly the failure surface the synchronous
        engine already handles gracefully (``ProbeStatus.DROPPED``).
        Must not be called from the transport's loop thread.
        """
        if threading.get_ident() == self._loop_thread_id:
            raise RuntimeError(
                "synchronous request from the transport loop thread "
                "would deadlock; use request_async")
        dst = message.dst
        if dst not in self._endpoints and dst not in self._routes:
            raise DeliveryError(f"no endpoint or route for peer {dst}")
        future = self.request_async(message, timeout=self.default_timeout)
        done = threading.Event()
        box: list = []

        def attach() -> None:
            # Future is single-threaded state; both this registration and
            # the eventual resolve() run on the loop thread (call_soon_
            # threadsafe is FIFO from one caller), so there is no race.
            future.add_done_callback(
                lambda resolved: (box.append(resolved.value), done.set()))

        self.call_in_loop(attach)
        if not done.wait(self.default_timeout + 5.0):
            raise DeliveryError(
                f"request to peer {dst} hung past its timeout")
        outcome: RequestOutcome = box[0]
        if outcome.status != "ok":
            raise DeliveryError(
                f"request to peer {dst} failed: {outcome.status}")
        return outcome.reply, outcome.rtt

    def send_local(self, message: Message) -> Optional[Message]:
        """Loopback delivery for a locally-hosted peer (no accounting)."""
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise DeliveryError(
                f"no endpoint registered for peer {message.dst}")
        # Endpoint state is owned by the loop thread; hop over to it.
        return self._run_sync(lambda: endpoint.on_message(message))

    def __repr__(self) -> str:
        addr = self._local_address or ("unbound", 0)
        return (f"UdpTransport({addr[0]}:{addr[1]}, "
                f"endpoints={len(self._endpoints)}, "
                f"routes={len(self._routes)})")

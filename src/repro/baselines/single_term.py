"""The single-term distributed index baseline ([11], Zhang & Suel).

"Distributed algorithms using traditional single-term indexes in
structured P2P networks generate unscalable network traffic during
retrieval, mainly because of the bandwidth consumption resulting from the
large posting list intersections required to process queries containing
several frequent terms."  (Section 1.)

This module builds exactly that system on the same substrate as
AlvisP2P, so experiment E2 can compare bytes-per-query apples to apples:

* every peer publishes its **full** (untruncated) single-term posting
  lists to the responsible peers;
* a multi-keyword query either

  - ``fetch_all``: downloads every query term's full global list to the
    querying peer and intersects there (the naive algorithm), or
  - ``pipelined``: ships the running intersection from the rarest term's
    owner through the others (the standard optimization — still
    transfers the full rarest list, so still grows with the collection).

Document scores in the published postings are per-term BM25 weights under
global statistics; the final conjunctive ranking therefore equals
centralized conjunctive BM25.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.bloom import BloomFilter
from repro.core import protocol
from repro.core.global_stats import (
    COLLECTION_KEY_ID,
    CollectionTotals,
    GlobalStatsCache,
    StatsStore,
)
from repro.dht.hashing import hash_terms
from repro.dht.ring import DHTRing
from repro.dht.routing import FingerTableStrategy, HopSpaceFingers, uniform_ids
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.postings import Posting, PostingList
from repro.ir.search import LocalSearchEngine
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.events import Simulator
from repro.util.rng import make_rng

__all__ = ["SingleTermTrace", "SingleTermNetwork"]

_PUBLISH = "BaselinePublish"
_FETCH = "BaselineFetch"
_FETCH_REPLY = "BaselineFetchReply"
_SHIP = "BaselineShip"
_SHIP_REPLY = "BaselineShipReply"
_BLOOM_GET = "BaselineBloomGet"
_BLOOM_REPLY = "BaselineBloomReply"
_BLOOM_FILTER = "BaselineBloomFilter"
_BLOOM_FILTER_REPLY = "BaselineBloomFilterReply"
_VERIFY = "BaselineVerify"
_VERIFY_REPLY = "BaselineVerifyReply"


@dataclass
class SingleTermTrace:
    """Per-query measurements, comparable to
    :class:`repro.core.retrieval.QueryTrace`."""

    terms: Tuple[str, ...]
    origin: int
    mode: str
    lookup_hops: int = 0
    request_messages: int = 0
    bytes_sent: int = 0
    postings_transferred: int = 0
    results: List[Tuple[int, float]] = field(default_factory=list)


class _BaselinePeer:
    """A peer of the single-term baseline network."""

    def __init__(self, peer_id: int, analyzer: Analyzer):
        self.peer_id = peer_id
        self.engine = LocalSearchEngine(analyzer)
        self.stats_store = StatsStore()
        self.stats_cache = GlobalStatsCache()
        #: term -> full aggregated posting list (this peer is responsible).
        self.term_store: Dict[str, PostingList] = {}

    def on_message(self, message: Message) -> Optional[Message]:
        kind = message.kind
        if kind == protocol.LOOKUP_HOP:
            return None
        if kind == _PUBLISH:
            for term, postings in message.payload["lists"].items():
                existing = self.term_store.get(term)
                merged = (existing.merge(postings) if existing is not None
                          else postings)
                self.term_store[term] = PostingList(
                    merged.entries, global_df=len(merged.entries))
            return None
        if kind == _FETCH:
            term = message.payload["term"]
            postings = self.term_store.get(term, PostingList())
            return message.reply(_FETCH_REPLY, {"postings": postings})
        if kind == _SHIP:
            term = message.payload["term"]
            incoming: PostingList = message.payload["postings"]
            local = self.term_store.get(term, PostingList())
            local_scores = {posting.doc_id: posting.score
                            for posting in local}
            intersected = [Posting(posting.doc_id,
                                   posting.score
                                   + local_scores[posting.doc_id])
                           for posting in incoming
                           if posting.doc_id in local_scores]
            result = PostingList(intersected, global_df=len(intersected))
            return message.reply(_SHIP_REPLY, {"postings": result})
        if kind == _BLOOM_GET:
            term = message.payload["term"]
            postings = self.term_store.get(term, PostingList())
            bloom = BloomFilter.of(postings.doc_ids())
            return message.reply(_BLOOM_REPLY, {"bloom": bloom})
        if kind == _BLOOM_FILTER:
            term = message.payload["term"]
            bloom: BloomFilter = message.payload["bloom"]
            postings = self.term_store.get(term, PostingList())
            candidates = [posting for posting in postings
                          if posting.doc_id in bloom]
            return message.reply(
                _BLOOM_FILTER_REPLY,
                {"postings": PostingList(candidates,
                                         global_df=len(candidates))})
        if kind == _VERIFY:
            term = message.payload["term"]
            postings = self.term_store.get(term, PostingList())
            wanted = set(message.payload["doc_ids"])
            scores = {posting.doc_id: posting.score
                      for posting in postings
                      if posting.doc_id in wanted}
            return message.reply(_VERIFY_REPLY, {"scores": scores})
        if kind == protocol.DF_PUBLISH:
            self.stats_store.fold_dfs(dict(message.payload["dfs"]))
            return None
        if kind == protocol.DF_GET:
            terms = list(message.payload["terms"])
            return message.reply(protocol.DF_REPLY,
                                 {"dfs": self.stats_store.dfs(terms)})
        if kind == protocol.COLLECTION_PUBLISH:
            payload = message.payload
            self.stats_store.fold_collection(int(payload["peer"]),
                                             int(payload["docs"]),
                                             int(payload["terms"]))
            return None
        if kind == protocol.COLLECTION_GET:
            totals = self.stats_store.collection_totals()
            return message.reply(protocol.COLLECTION_REPLY,
                                 {"docs": totals.num_documents,
                                  "terms": totals.total_terms,
                                  "peers": totals.num_peers})
        raise ValueError(f"baseline peer cannot handle {kind!r}")


class SingleTermNetwork:
    """The unscalable baseline, on the same simulated substrate."""

    def __init__(self, num_peers: int, seed: int = 0,
                 strategy: Optional[FingerTableStrategy] = None,
                 latency: Optional[LatencyModel] = None,
                 account_lookups: bool = True,
                 analyzer: Optional[Analyzer] = None):
        if num_peers <= 0:
            raise ValueError(f"num_peers must be positive, got {num_peers}")
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.account_lookups = account_lookups
        self.simulator = Simulator()
        self.transport = Transport(
            self.simulator,
            latency if latency is not None else ConstantLatency(0.02),
            make_rng(seed, "latency"))
        self.ring = DHTRing(
            strategy if strategy is not None else HopSpaceFingers(),
            self.transport)
        self._peers: Dict[int, _BaselinePeer] = {}
        for peer_id in uniform_ids(make_rng(seed, "peer-ids"), num_peers):
            peer = _BaselinePeer(peer_id, self.analyzer)
            self._peers[peer_id] = peer
            self.transport.register(peer_id, peer)
            self.ring.add_node(peer_id)
        self.ring.rebuild_tables()
        self._doc_owner: Dict[int, int] = {}
        self._next_doc_id = 1

    # ------------------------------------------------------------------

    def peers(self) -> List[_BaselinePeer]:
        return [self._peers[peer_id] for peer_id in sorted(self._peers)]

    def peer_ids(self) -> List[int]:
        return sorted(self._peers)

    def distribute_documents(self, documents: Sequence[Document]) -> None:
        """Round-robin placement, mirroring
        :meth:`AlvisNetwork.distribute_documents`."""
        ids = self.peer_ids()
        for index, document in enumerate(documents):
            owner = ids[index % len(ids)]
            document.doc_id = self._next_doc_id
            self._next_doc_id += 1
            document.owner_peer = owner
            self._peers[owner].engine.add_document(document)
            self._doc_owner[document.doc_id] = owner

    # ------------------------------------------------------------------

    def _lookup(self, origin: int, key_id: int) -> Tuple[int, int]:
        result = self.ring.lookup(origin, key_id,
                                  account=self.account_lookups)
        return result.owner, result.hops

    def _send(self, origin: int, dst: int, kind: str,
              payload: Dict) -> Optional[Dict]:
        message = Message(src=origin, dst=dst, kind=kind, payload=payload)
        if origin == dst:
            reply = self.transport.send_local(message)
        else:
            reply, _rtt = self.transport.request(message)
        return dict(reply.payload) if reply is not None else None

    # ------------------------------------------------------------------

    def run_statistics_phase(self) -> None:
        """Same statistics aggregation as the AlvisP2P network."""
        for peer in self.peers():
            owner, _hops = self._lookup(peer.peer_id, COLLECTION_KEY_ID)
            docs = peer.engine.index.num_documents
            terms = peer.engine.index.total_terms
            self._send(peer.peer_id, owner, protocol.COLLECTION_PUBLISH,
                       {"peer": peer.peer_id, "docs": docs, "terms": terms})
            reply = self._send(peer.peer_id, owner, protocol.COLLECTION_GET,
                               {})
            assert reply is not None
        for peer in self.peers():
            contributions = {term: peer.engine.index.document_frequency(term)
                             for term in peer.engine.index.vocabulary()}
            batches: Dict[int, Dict[str, int]] = {}
            for term, df in contributions.items():
                owner, _hops = self._lookup(peer.peer_id,
                                            hash_terms([term]))
                batches.setdefault(owner, {})[term] = df
            for owner, batch in batches.items():
                self._send(peer.peer_id, owner, protocol.DF_PUBLISH,
                           {"dfs": batch})
        # Fetch totals and dfs for scoring.
        for peer in self.peers():
            owner, _hops = self._lookup(peer.peer_id, COLLECTION_KEY_ID)
            reply = self._send(peer.peer_id, owner, protocol.COLLECTION_GET,
                               {})
            assert reply is not None
            peer.stats_cache.store_totals(CollectionTotals(
                num_documents=int(reply["docs"]),
                total_terms=int(reply["terms"]),
                num_peers=int(reply["peers"])))
            vocabulary = peer.engine.index.vocabulary()
            batches = {}
            for term in vocabulary:
                owner, _hops = self._lookup(peer.peer_id,
                                            hash_terms([term]))
                batches.setdefault(owner, []).append(term)
            for owner, terms in batches.items():
                reply = self._send(peer.peer_id, owner, protocol.DF_GET,
                                   {"terms": sorted(terms)})
                if reply is not None:
                    peer.stats_cache.store_dfs(dict(reply["dfs"]))

    def build_index(self) -> int:
        """Publish full single-term lists; returns total postings stored."""
        for peer in self.peers():
            stats = peer.stats_cache.statistics()
            batches: Dict[int, Dict[str, PostingList]] = {}
            for term in peer.engine.index.vocabulary():
                matching = peer.engine.index.documents_with_term(term)
                postings = [Posting(doc_id,
                                    peer.engine.score_document(
                                        doc_id, [term], stats))
                            for doc_id in matching]
                full = PostingList(postings, global_df=len(postings))
                owner, _hops = self._lookup(peer.peer_id,
                                            hash_terms([term]))
                batches.setdefault(owner, {})[term] = full
            for owner, lists in batches.items():
                self._send(peer.peer_id, owner, _PUBLISH, {"lists": lists})
        return sum(len(postings)
                   for peer in self.peers()
                   for postings in peer.term_store.values())

    # ------------------------------------------------------------------

    def query(self, origin: int, query_terms: Sequence[str],
              mode: str = "pipelined", k: int = 10) -> SingleTermTrace:
        """Run one conjunctive multi-keyword query."""
        terms = tuple(dict.fromkeys(query_terms))
        if not terms:
            raise ValueError("query has no terms")
        if mode not in ("fetch_all", "pipelined", "bloom"):
            raise ValueError(f"unknown mode {mode!r}")
        trace = SingleTermTrace(terms=terms, origin=origin, mode=mode)
        bytes_before = self.simulator.metrics.counter_value("net.bytes.sent")
        if mode == "fetch_all":
            result = self._query_fetch_all(origin, terms, trace)
        elif mode == "bloom":
            result = self._query_bloom(origin, terms, trace)
        else:
            result = self._query_pipelined(origin, terms, trace)
        ranked = sorted(((posting.doc_id, posting.score)
                         for posting in result),
                        key=lambda pair: (-pair[1], pair[0]))
        trace.results = ranked[:k]
        trace.bytes_sent = int(
            self.simulator.metrics.counter_value("net.bytes.sent")
            - bytes_before)
        return trace

    def _query_fetch_all(self, origin: int, terms: Tuple[str, ...],
                         trace: SingleTermTrace) -> PostingList:
        lists = []
        for term in terms:
            owner, hops = self._lookup(origin, hash_terms([term]))
            trace.lookup_hops += hops
            reply = self._send(origin, owner, _FETCH, {"term": term})
            trace.request_messages += 1
            postings: PostingList = (reply["postings"] if reply
                                     else PostingList())
            trace.postings_transferred += len(postings)
            lists.append(postings)
        return _intersect_at_origin(lists)

    def _query_pipelined(self, origin: int, terms: Tuple[str, ...],
                         trace: SingleTermTrace) -> PostingList:
        # Rarest-first order by global df, resolved at the term owners.
        ordered = self._order_by_global_df(origin, terms, trace)
        first_owner, hops = self._lookup(origin,
                                         hash_terms([ordered[0]]))
        trace.lookup_hops += hops
        reply = self._send(origin, first_owner, _FETCH,
                           {"term": ordered[0]})
        trace.request_messages += 1
        running: PostingList = (reply["postings"] if reply
                                else PostingList())
        trace.postings_transferred += len(running)
        for term in ordered[1:]:
            if not running:
                break
            owner, hops = self._lookup(origin, hash_terms([term]))
            trace.lookup_hops += hops
            reply = self._send(origin, owner, _SHIP,
                               {"term": term, "postings": running})
            trace.request_messages += 1
            running = reply["postings"] if reply else PostingList()
            trace.postings_transferred += len(running)
        return running

    def _query_bloom(self, origin: int, terms: Tuple[str, ...],
                     trace: SingleTermTrace) -> PostingList:
        """Bloom-filter intersection (Zhang & Suel's optimization).

        For the first (rarest, second-rarest) pair: fetch a Bloom filter
        of the rarest list, have the second owner filter its list through
        it, then verify the candidates (and collect their scores) at the
        rarest owner — no full list ever crosses the wire, but the filter
        itself still scales with the list.  Any remaining terms intersect
        the (now small) running set via the pipelined path.
        """
        ordered = self._order_by_global_df(origin, terms, trace)
        first_owner, hops = self._lookup(origin,
                                         hash_terms([ordered[0]]))
        trace.lookup_hops += hops
        if len(ordered) == 1:
            reply = self._send(origin, first_owner, _FETCH,
                               {"term": ordered[0]})
            trace.request_messages += 1
            postings: PostingList = (reply["postings"] if reply
                                     else PostingList())
            trace.postings_transferred += len(postings)
            return postings
        reply = self._send(origin, first_owner, _BLOOM_GET,
                           {"term": ordered[0]})
        trace.request_messages += 1
        bloom: BloomFilter = reply["bloom"]
        second_owner, hops = self._lookup(origin,
                                          hash_terms([ordered[1]]))
        trace.lookup_hops += hops
        reply = self._send(origin, second_owner, _BLOOM_FILTER,
                           {"term": ordered[1], "bloom": bloom})
        trace.request_messages += 1
        candidates: PostingList = (reply["postings"] if reply
                                   else PostingList())
        trace.postings_transferred += len(candidates)
        # Verify candidates at the rarest owner (removes false positives)
        # and add its per-term scores.
        reply = self._send(origin, first_owner, _VERIFY,
                           {"term": ordered[0],
                            "doc_ids": candidates.doc_ids()})
        trace.request_messages += 1
        verified = reply["scores"] if reply else {}
        running = PostingList(
            [Posting(posting.doc_id,
                     posting.score + verified[posting.doc_id])
             for posting in candidates if posting.doc_id in verified],
            global_df=len(verified))
        for term in ordered[2:]:
            if not running:
                break
            owner, hops = self._lookup(origin, hash_terms([term]))
            trace.lookup_hops += hops
            reply = self._send(origin, owner, _SHIP,
                               {"term": term, "postings": running})
            trace.request_messages += 1
            running = reply["postings"] if reply else PostingList()
            trace.postings_transferred += len(running)
        return running

    def _order_by_global_df(self, origin: int, terms: Tuple[str, ...],
                            trace: SingleTermTrace) -> List[str]:
        dfs: Dict[str, int] = {}
        for term in terms:
            owner, hops = self._lookup(origin, hash_terms([term]))
            trace.lookup_hops += hops
            reply = self._send(origin, owner, protocol.DF_GET,
                               {"terms": [term]})
            trace.request_messages += 1
            dfs[term] = (int(reply["dfs"].get(term, 0)) if reply else 0)
        return sorted(terms, key=lambda term: (dfs[term], term))

    # ------------------------------------------------------------------

    def bytes_sent_total(self) -> float:
        return self.simulator.metrics.counter_value("net.bytes.sent")

    def reset_traffic(self) -> None:
        self.simulator.metrics.reset()
        self.transport.reset_load_counters()

    def total_postings_stored(self) -> int:
        return sum(len(postings)
                   for peer in self.peers()
                   for postings in peer.term_store.values())


def _intersect_at_origin(lists: List[PostingList]) -> PostingList:
    """Conjunctive intersection with score accumulation."""
    if not lists:
        return PostingList()
    lists = sorted(lists, key=len)
    scores: Dict[int, float] = {posting.doc_id: posting.score
                                for posting in lists[0]}
    for postings in lists[1:]:
        found = {posting.doc_id: posting.score for posting in postings}
        scores = {doc_id: score + found[doc_id]
                  for doc_id, score in scores.items()
                  if doc_id in found}
        if not scores:
            break
    result = [Posting(doc_id, score) for doc_id, score in scores.items()]
    return PostingList(result, global_df=len(result))

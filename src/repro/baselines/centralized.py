"""Centralized BM25 reference engine.

One :class:`~repro.ir.search.LocalSearchEngine` indexing the *entire*
collection — what a centralized search engine sees.  Experiment E4
measures how close AlvisP2P's distributed, truncated retrieval comes to
this reference (the paper claims "fully comparable" quality).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.search import LocalSearchEngine, SearchResult

__all__ = ["CentralizedEngine"]


class CentralizedEngine:
    """The whole collection behind one BM25 engine."""

    def __init__(self, documents: Iterable[Document] = (),
                 analyzer: Optional[Analyzer] = None):
        self.engine = LocalSearchEngine(analyzer)
        for document in documents:
            self.engine.add_document(document)

    def add_document(self, document: Document) -> None:
        self.engine.add_document(document)

    @property
    def num_documents(self) -> int:
        return self.engine.num_documents

    # ------------------------------------------------------------------

    def search(self, query: str, k: int = 10) -> List[SearchResult]:
        """Standard disjunctive BM25 top-k."""
        return self.engine.search(query, k=k)

    def top_doc_ids(self, query_terms: Sequence[str],
                    k: int = 10) -> List[int]:
        """Top-k document ids for pre-analyzed terms (quality reference).

        Uses the same disjunctive BM25 as :meth:`search` but skips snippet
        generation, which the quality benchmark does not need.
        """
        stats = self.engine.local_statistics()
        candidates = set()
        for term in query_terms:
            candidates |= self.engine.index.documents_with_term(term)
        scored: List[Tuple[float, int]] = []
        for doc_id in candidates:
            scored.append((self.engine.score_document(doc_id, query_terms,
                                                      stats), doc_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [doc_id for _score, doc_id in scored[:k]]

    def conjunctive_doc_ids(self, query_terms: Sequence[str],
                            k: int = 10) -> List[int]:
        """Top-k ids among documents containing *all* query terms.

        The distributed index has conjunctive semantics per key, so this
        variant isolates ranking differences from semantics differences.
        """
        stats = self.engine.local_statistics()
        matching = self.engine.index.documents_with_all(query_terms)
        scored: List[Tuple[float, int]] = []
        for doc_id in matching:
            scored.append((self.engine.score_document(doc_id, query_terms,
                                                      stats), doc_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [doc_id for _score, doc_id in scored[:k]]

"""Baselines the paper's claims are measured against.

* :mod:`repro.baselines.single_term` — a distributed single-term index
  with *full* posting lists, whose multi-keyword retrieval traffic grows
  with collection size (the unscalable strategy analyzed by Zhang & Suel,
  P2P 2005, cited as [11] in the paper).  Both the naive fetch-all and the
  pipelined smallest-first intersection are implemented.
* :mod:`repro.baselines.centralized` — a single-node BM25 engine over the
  whole collection, the quality reference for "retrieval quality fully
  comparable to state-of-the-art centralized search engines".
"""

from repro.baselines.centralized import CentralizedEngine
from repro.baselines.single_term import SingleTermNetwork, SingleTermTrace

__all__ = ["CentralizedEngine", "SingleTermNetwork", "SingleTermTrace"]

"""Bloom filters for distributed posting-list intersection.

Zhang & Suel (P2P 2005) — the paper's citation [11] — analyze Bloom
filters as the classic remedy for posting-list-shipping intersection: to
intersect lists held by two peers, ship a Bloom filter of the smaller
list (a few bits per posting instead of 16 bytes), receive the candidate
matches, and remove false positives locally.  Their conclusion, which
experiment E2 reproduces, is that this buys a constant factor only — the
filter still grows linearly with the posting list, so multi-keyword
traffic remains unscalable.  AlvisP2P's answer is structural (bounded,
truncated lists per *combination*), not a better intersection.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, List

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic Bloom filter over integer document ids.

    Sized for a target false-positive rate; the bit array is stored as a
    Python int (arbitrary-precision bit operations are fast enough at
    laptop scale).
    """

    def __init__(self, capacity: int, false_positive_rate: float = 0.01):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if not 0 < false_positive_rate < 1:
            raise ValueError(
                f"false_positive_rate must be in (0, 1), got "
                f"{false_positive_rate}")
        capacity = max(1, capacity)
        # Standard sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
        self.num_bits = max(
            8, int(math.ceil(-capacity * math.log(false_positive_rate)
                             / (math.log(2) ** 2))))
        self.num_hashes = max(
            1, int(round(self.num_bits / capacity * math.log(2))))
        self._bits = 0
        self.count = 0

    # ------------------------------------------------------------------

    def _positions(self, item: int) -> List[int]:
        digest = hashlib.sha1(item.to_bytes(8, "big",
                                            signed=False)).digest()
        positions = []
        for index in range(self.num_hashes):
            chunk = digest[(index * 2) % 18:(index * 2) % 18 + 4]
            value = int.from_bytes(chunk, "big") ^ (index * 0x9E3779B9)
            positions.append(value % self.num_bits)
        return positions

    def add(self, item: int) -> None:
        """Insert one document id."""
        for position in self._positions(item):
            self._bits |= 1 << position
        self.count += 1

    def add_all(self, items: Iterable[int]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: int) -> bool:
        return all(self._bits >> position & 1
                   for position in self._positions(item))

    # ------------------------------------------------------------------

    def wire_size(self) -> int:
        """Bytes on the wire: the bit array plus a small header."""
        return 8 + (self.num_bits + 7) // 8

    @classmethod
    def of(cls, items: Iterable[int],
           false_positive_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for (and filled with) ``items``."""
        materialized = list(items)
        instance = cls(len(materialized), false_positive_rate)
        instance.add_all(materialized)
        return instance

"""Corpora and query workloads.

The paper demonstrates on a "large corpus of documents" published across
research institutions; its companion evaluations use public web/TREC
collections.  Offline, we substitute a **synthetic corpus generator**
whose term statistics (Zipfian unigram law, topical co-occurrence) match
the properties those evaluations depend on, plus a plain-text loader for
user-supplied collections and a **query workload generator** with Zipfian
query popularity and topic drift (what QDI adapts to).
"""

from repro.corpus.loader import load_directory, sample_documents
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpus

__all__ = [
    "load_directory",
    "sample_documents",
    "QueryWorkload",
    "QueryWorkloadConfig",
    "SyntheticCorpusConfig",
    "SyntheticCorpus",
]

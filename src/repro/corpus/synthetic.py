"""Synthetic text collections with realistic term statistics.

Substitution note (see DESIGN.md): the published AlvisP2P evaluations used
web and TREC collections we cannot ship.  What the system's behaviour
actually depends on is:

* a **Zipfian unigram distribution** — this is what makes single-term
  posting lists unscalable (a few terms appear in a large fraction of all
  documents) and what bounds the HDK key vocabulary;
* **topical co-occurrence** — frequent terms co-occur in stable pairs and
  triples within topics, which is what makes multi-term keys selective and
  queryable;
* **document length dispersion** — BM25's length normalization needs
  non-constant lengths to matter.

The generator reproduces all three with a topic-mixture model: a global
Zipfian background distribution plus per-topic Zipfian emphasis over a
topic-specific vocabulary slice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ir.documents import Document
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler

__all__ = ["SyntheticCorpusConfig", "SyntheticCorpus", "word_for_rank"]

_SYLLABLES = (
    "ba be bi bo bu da de di do du fa fe fi fo fu ga ge gi go gu "
    "ka ke ki ko ku la le li lo lu ma me mi mo mu na ne ni no nu "
    "pa pe pi po pu ra re ri ro ru sa se si so su ta te ti to tu "
    "va ve vi vo vu za ze zi zo zu"
).split()


def word_for_rank(rank: int) -> str:
    """Deterministic pronounceable word for a vocabulary rank.

    Encodes ``rank`` in base-``len(_SYLLABLES)``, guaranteeing injectivity;
    a fixed suffix syllable avoids clashes with English stopwords and keeps
    the Porter stemmer from merging distinct ranks.

    >>> word_for_rank(0) != word_for_rank(1)
    True
    """
    if rank < 0:
        raise ValueError(f"rank must be >= 0, got {rank}")
    base = len(_SYLLABLES)
    digits = []
    value = rank
    while True:
        digits.append(value % base)
        value //= base
        if value == 0:
            break
    return "".join(_SYLLABLES[digit] for digit in reversed(digits)) + "x"


@dataclass
class SyntheticCorpusConfig:
    """Knobs of the generator.

    Defaults produce a small but statistically realistic collection; the
    benchmarks scale ``num_documents`` and ``vocabulary_size`` up.
    """

    num_documents: int = 200
    vocabulary_size: int = 2000
    num_topics: int = 10
    mean_document_length: int = 120
    length_spread: float = 0.4       #: relative spread of document lengths
    zipf_exponent: float = 1.0       #: background unigram skew
    topic_zipf_exponent: float = 0.8 #: within-topic skew
    topic_mix: float = 0.6           #: share of tokens drawn from the topic
    topic_vocabulary_size: int = 300 #: terms per topic slice
    seed: int = 42

    def __post_init__(self):
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.vocabulary_size <= 1:
            raise ValueError("vocabulary_size must be > 1")
        if self.num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if self.mean_document_length <= 0:
            raise ValueError("mean_document_length must be positive")
        if not 0 <= self.topic_mix <= 1:
            raise ValueError("topic_mix must be in [0, 1]")
        if self.topic_vocabulary_size > self.vocabulary_size:
            raise ValueError(
                "topic_vocabulary_size cannot exceed vocabulary_size")


class SyntheticCorpus:
    """Generates :class:`~repro.ir.documents.Document` objects on demand.

    Documents are generated lazily and deterministically: document ``i`` is
    identical across runs and independent of generation order.
    """

    def __init__(self, config: SyntheticCorpusConfig):
        self.config = config
        self._background = ZipfSampler(config.vocabulary_size,
                                       config.zipf_exponent)
        self._topic_sampler = ZipfSampler(config.topic_vocabulary_size,
                                          config.topic_zipf_exponent)
        # Each topic owns a deterministic slice of vocabulary ranks,
        # sampled without replacement from the mid-frequency band (very
        # frequent terms stay background; very rare terms stay rare).
        self._topic_vocabularies: List[List[int]] = []
        for topic in range(config.num_topics):
            rng = make_rng(config.seed, "topic-vocab", topic)
            low = config.vocabulary_size // 50
            high = config.vocabulary_size - 1
            ranks = rng.sample(range(low, high),
                               config.topic_vocabulary_size)
            self._topic_vocabularies.append(ranks)

    # ------------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return self.config.num_documents

    def vocabulary(self) -> List[str]:
        """The full vocabulary as words."""
        return [word_for_rank(rank)
                for rank in range(self.config.vocabulary_size)]

    def topic_of(self, doc_index: int) -> int:
        """The topic assigned to document ``doc_index``."""
        rng = make_rng(self.config.seed, "doc-topic", doc_index)
        return rng.randrange(self.config.num_topics)

    def document_terms(self, doc_index: int) -> List[str]:
        """The raw token sequence of document ``doc_index``."""
        if not 0 <= doc_index < self.config.num_documents:
            raise IndexError(f"doc_index {doc_index} out of range")
        config = self.config
        rng = make_rng(config.seed, "doc", doc_index)
        topic = self.topic_of(doc_index)
        topic_ranks = self._topic_vocabularies[topic]
        spread = max(1, int(config.mean_document_length
                            * config.length_spread))
        length = max(5, config.mean_document_length
                     + rng.randint(-spread, spread))
        tokens = []
        for _position in range(length):
            if rng.random() < config.topic_mix:
                rank = topic_ranks[self._topic_sampler.sample(rng)]
            else:
                rank = self._background.sample(rng)
            tokens.append(word_for_rank(rank))
        return tokens

    def document(self, doc_index: int, doc_id: int = None,
                 owner_peer: int = -1) -> Document:
        """Materialize document ``doc_index`` as a :class:`Document`."""
        tokens = self.document_terms(doc_index)
        text = " ".join(tokens)
        title = " ".join(tokens[:5])
        if doc_id is None:
            doc_id = doc_index
        return Document(doc_id=doc_id, title=title, text=text,
                        url=f"synthetic://doc/{doc_index}",
                        owner_peer=owner_peer)

    def documents(self) -> List[Document]:
        """Materialize the whole collection (doc_id == doc_index)."""
        return [self.document(index)
                for index in range(self.config.num_documents)]

    # ------------------------------------------------------------------

    def frequent_term_ranks(self, count: int) -> List[int]:
        """The ``count`` most frequent background ranks (for tests)."""
        return list(range(min(count, self.config.vocabulary_size)))

    def topic_terms(self, topic: int, count: int) -> List[str]:
        """The ``count`` most emphasized words of a topic.

        These are the words most likely to form discriminative
        combinations, so the workload generator biases queries toward
        them.
        """
        ranks = self._topic_vocabularies[topic][:count]
        return [word_for_rank(rank) for rank in ranks]

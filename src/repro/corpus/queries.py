"""Query workloads with Zipfian popularity and topic drift.

QDI's whole premise is that real query streams are heavily skewed (a small
set of popular queries dominates) and drift over time.  The workload
generator builds a pool of *answerable* multi-term queries (terms drawn
from the same document, so conjunctive results are non-empty), then samples
the stream from the pool with a Zipf law whose rank order can be rotated to
model drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.corpus.synthetic import SyntheticCorpus
from repro.ir.analysis import Analyzer
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler

__all__ = ["QueryWorkloadConfig", "QueryWorkload"]


@dataclass
class QueryWorkloadConfig:
    """Knobs of the query generator."""

    pool_size: int = 200           #: number of distinct queries
    min_terms: int = 2             #: minimum query length (terms)
    max_terms: int = 3             #: maximum query length (terms)
    popularity_exponent: float = 0.9  #: Zipf skew of query popularity
    seed: int = 7

    def __post_init__(self):
        if self.pool_size <= 0:
            raise ValueError("pool_size must be positive")
        if not 1 <= self.min_terms <= self.max_terms:
            raise ValueError(
                f"need 1 <= min_terms <= max_terms, got "
                f"{self.min_terms}, {self.max_terms}")


class QueryWorkload:
    """A reusable pool of queries plus popularity-skewed stream sampling."""

    def __init__(self, pool: Sequence[Tuple[str, ...]],
                 config: QueryWorkloadConfig):
        if not pool:
            raise ValueError("query pool is empty")
        self.config = config
        self.pool: List[Tuple[str, ...]] = [tuple(query) for query in pool]
        self._sampler = ZipfSampler(len(self.pool),
                                    config.popularity_exponent)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_corpus(cls, corpus: SyntheticCorpus,
                    config: Optional[QueryWorkloadConfig] = None,
                    analyzer: Optional[Analyzer] = None) -> "QueryWorkload":
        """Build an answerable query pool from a synthetic corpus.

        Each query's terms are sampled from a single document's analyzed
        term multiset (preferring mid-frequency terms), guaranteeing the
        conjunction matches at least that document.
        """
        if config is None:
            config = QueryWorkloadConfig()
        if analyzer is None:
            analyzer = Analyzer()
        rng = make_rng(config.seed, "query-pool")
        pool: List[Tuple[str, ...]] = []
        seen = set()
        attempts = 0
        max_attempts = config.pool_size * 50
        while len(pool) < config.pool_size and attempts < max_attempts:
            attempts += 1
            doc_index = rng.randrange(corpus.num_documents)
            terms = analyzer.analyze(
                " ".join(corpus.document_terms(doc_index)))
            distinct = sorted(set(terms))
            size = rng.randint(config.min_terms, config.max_terms)
            if len(distinct) < size:
                continue
            query = tuple(sorted(rng.sample(distinct, size)))
            if query in seen:
                continue
            seen.add(query)
            pool.append(query)
        if len(pool) < config.pool_size:
            raise RuntimeError(
                f"could only build {len(pool)} of {config.pool_size} "
                "queries; corpus too small or too repetitive")
        return cls(pool, config)

    @classmethod
    def from_documents(cls, documents, config: Optional[QueryWorkloadConfig]
                       = None,
                       analyzer: Optional[Analyzer] = None) -> "QueryWorkload":
        """Build a pool from concrete :class:`Document` objects."""
        if config is None:
            config = QueryWorkloadConfig()
        if analyzer is None:
            analyzer = Analyzer()
        rng = make_rng(config.seed, "query-pool-docs")
        analyzed = [sorted(set(analyzer.analyze(document.text)))
                    for document in documents]
        analyzed = [terms for terms in analyzed
                    if len(terms) >= config.min_terms]
        if not analyzed:
            raise ValueError("no documents with enough distinct terms")
        pool: List[Tuple[str, ...]] = []
        seen = set()
        attempts = 0
        max_attempts = config.pool_size * 50
        while len(pool) < config.pool_size and attempts < max_attempts:
            attempts += 1
            terms = rng.choice(analyzed)
            size = rng.randint(config.min_terms,
                               min(config.max_terms, len(terms)))
            query = tuple(sorted(rng.sample(terms, size)))
            if query in seen:
                continue
            seen.add(query)
            pool.append(query)
        if not pool:
            raise RuntimeError("could not build any queries")
        return cls(pool, config)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, rng: random.Random,
               drift: int = 0) -> Tuple[str, ...]:
        """Draw one query.

        ``drift`` rotates the popularity ranking: query at popularity rank
        r becomes rank ``(r + drift) mod pool``.  Increasing drift over a
        stream models interest shift — the regime where QDI must index new
        keys and evict old ones (experiment E5).
        """
        rank = self._sampler.sample(rng)
        index = (rank + drift) % len(self.pool)
        return self.pool[index]

    def stream(self, rng: random.Random, count: int,
               drift_per_query: float = 0.0) -> Iterator[Tuple[str, ...]]:
        """Yield ``count`` queries with linearly accumulating drift."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        drift = 0.0
        for _index in range(count):
            yield self.sample(rng, drift=int(drift))
            drift += drift_per_query

    def most_popular(self, count: int,
                     drift: int = 0) -> List[Tuple[str, ...]]:
        """The ``count`` most popular queries under the given drift."""
        return [self.pool[(rank + drift) % len(self.pool)]
                for rank in range(min(count, len(self.pool)))]

"""``repro lint`` — the command-line front end.

Exit status: 0 when the scan matches the committed baseline exactly
(no new findings, no stale entries), 1 otherwise.  ``--update-baseline``
rewrites the baseline to the current findings and exits 0; use it only
to grandfather debt deliberately — the goal state is an empty baseline.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import IO, List

from repro.lint.baseline import (compare_with_baseline, load_baseline,
                                 write_baseline)
from repro.lint.codes import CODES
from repro.lint.findings import format_findings
from repro.lint.runner import run_lint

__all__ = ["add_lint_arguments", "run_lint_command", "main"]

DEFAULT_PATHS = ("src", "benchmarks", "examples")
DEFAULT_BASELINE = "lint_baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=(f"files or directories to lint (default: the repo's "
              f"{'/'.join(DEFAULT_PATHS)} directories that exist)"))
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="lint_format",
        help="output format (text: path:line:col: CODE message)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(f"baseline file of grandfathered findings (default: "
              f"./{DEFAULT_BASELINE} when present)"))
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings and exit 0")
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print the RPL error-code table and exit")


def run_lint_command(args: argparse.Namespace, out: IO[str]) -> int:
    if args.list_codes:
        _print_codes(out)
        return 0

    root = Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else \
        [root / p for p in DEFAULT_PATHS if (root / p).is_dir()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=out)
        return 2
    if not paths:
        print("repro lint: nothing to lint", file=out)
        return 2

    findings = run_lint(paths, project_root=root)

    baseline_path = Path(args.baseline) if args.baseline else \
        root / DEFAULT_BASELINE
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"baseline updated: {baseline_path} "
              f"({len(findings)} finding(s))", file=out)
        return 0

    baseline = load_baseline(baseline_path)
    new, stale = compare_with_baseline(findings, baseline)

    if new:
        print(format_findings(new, args.lint_format), file=out)
    elif args.lint_format == "json":
        print("[]", file=out)
    for path, code, symbol in stale:
        print(f"stale baseline entry: {path} {code} {symbol} — fixed "
              f"findings must be removed from {baseline_path.name}",
              file=out)
    suppressed = len(baseline) and sum(baseline.values()) - len(stale)
    summary: List[str] = [f"{len(new)} finding(s)"]
    if baseline:
        summary.append(f"{suppressed} baselined")
    if stale:
        summary.append(f"{len(stale)} stale baseline entrie(s)")
    if args.lint_format == "text":
        print(f"repro lint: {', '.join(summary)}", file=out)
    return 1 if new or stale else 0


def _print_codes(out: IO[str]) -> None:
    width = max(len(code) for code in CODES)
    checker_width = max(len(entry.checker) for entry in CODES.values())
    for code, entry in sorted(CODES.items()):
        print(f"{code:<{width}}  {entry.checker:<{checker_width}}  "
              f"{entry.summary}", file=out)


def main(argv=None) -> int:  # pragma: no cover - thin wrapper
    import sys
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__.splitlines()[0])
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv), sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

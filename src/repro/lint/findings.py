"""Findings: what a checker reports, and how it is rendered.

A finding's *fingerprint* — ``(path, code, symbol)`` — deliberately
excludes the line number, so a baseline entry survives unrelated edits
to the same file; ``symbol`` is the stable offending token (the dotted
call name, the class name, the knob, the import target...).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["Finding", "fingerprint", "format_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str      #: project-root-relative posix path
    line: int      #: 1-based line of the offending node
    col: int       #: 0-based column
    code: str      #: stable error code ("RPL010", ...)
    symbol: str    #: stable offending token, used for baselining
    message: str   #: human-readable explanation

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """Baseline identity of a finding (line numbers excluded)."""
    return (finding.path, finding.code, finding.symbol)


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one per line) or ``json``."""
    ordered: List[Finding] = sorted(findings)
    if fmt == "json":
        return json.dumps(
            [{"path": f.path, "line": f.line, "col": f.col,
              "code": f.code, "symbol": f.symbol, "message": f.message}
             for f in ordered],
            indent=2)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r} (expected text or json)")
    return "\n".join(f"{f.location()}: {f.code} {f.message}"
                     for f in ordered)

"""Source discovery and the per-file parse unit.

A :class:`SourceFile` carries the parsed AST, the suppression index and
the file's position *inside the repro package* (``repro_rel``), which is
what scope rules key on: ``sim/events.py`` stays ``sim/events.py``
whether the tree lives under ``src/repro/`` in this repo or under a
fixture directory in a test.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from typing import Iterator, List, Optional, Sequence

from repro.lint.suppress import SuppressionIndex, parse_suppressions

__all__ = ["SourceFile", "Project", "discover_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              ".benchmarks", "node_modules"}


class SourceFile:
    """One parsed python file."""

    def __init__(self, path: Path, project_root: Path):
        self.path = path
        self.rel = PurePosixPath(
            path.resolve().relative_to(project_root.resolve())).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=str(path))
        self.suppressions = SuppressionIndex(parse_suppressions(self.text))
        self.repro_rel = _repro_relative(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SourceFile({self.rel})"


def _repro_relative(path: Path) -> Optional[str]:
    """Path below the innermost ``repro`` package dir, or ``None``.

    ``.../src/repro/sim/events.py`` -> ``"sim/events.py"``;
    ``.../src/repro/cli.py`` -> ``"cli.py"``; files outside a ``repro``
    package (benchmarks, examples, tests) -> ``None``.
    """
    parts = path.resolve().parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return None


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterator[Path] = (
                candidate for candidate in sorted(path.rglob("*.py"))
                if not _skipped(candidate))
        elif path.suffix == ".py":
            candidates = iter([path])
        else:
            continue
        for candidate in candidates:
            seen[candidate.resolve()] = candidate
    return sorted(seen.values())


def _skipped(path: Path) -> bool:
    return any(part in _SKIP_DIRS or part.startswith(".")
               for part in path.parts)


class Project:
    """Everything the checkers see: the parsed file set plus lookups."""

    def __init__(self, files: Sequence[SourceFile], project_root: Path):
        self.files = list(files)
        self.project_root = project_root
        self._by_repro_rel = {f.repro_rel: f for f in self.files
                              if f.repro_rel is not None}

    @classmethod
    def load(cls, paths: Sequence[Path], project_root: Path) -> "Project":
        files = [SourceFile(path, project_root)
                 for path in discover_files(paths)]
        return cls(files, project_root)

    def find(self, repro_rel: str) -> Optional[SourceFile]:
        """The scanned file at a repro-package-relative path, if any."""
        return self._by_repro_rel.get(repro_rel)

"""Inline suppression comments.

Syntax (same line as the finding, or a standalone comment line directly
above it)::

    started = time.perf_counter()  # repro-lint: disable=RPL010 (reason)

    # repro-lint: disable=RPL010,RPL011 (one reason for both)
    started = time.perf_counter()

The parenthesized reason is mandatory: a suppression without one is
reported as RPL000.  Suppressions that silence nothing are reported as
RPL009, so stale disables cannot linger and mask future regressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Suppression", "parse_suppressions", "SuppressionIndex"]

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=\s*"
    r"(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int                 #: line the comment sits on (1-based)
    target_line: int          #: line whose findings it silences
    codes: Tuple[str, ...]
    reason: Optional[str]     #: None when the mandatory reason is missing
    used: bool = field(default=False, compare=False)


def parse_suppressions(text: str) -> List[Suppression]:
    """Extract every suppression comment from ``text``.

    A comment-only line targets the next line; a trailing comment
    targets its own line.  Real COMMENT tokens only — a directive shown
    inside a docstring or string literal is documentation, not a
    suppression.
    """
    suppressions: List[Suppression] = []
    lines = text.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions  # unparseable text carries no suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        index, col = token.start
        before = lines[index - 1][:col] if index <= len(lines) else ""
        standalone = not before.strip()
        codes = tuple(code.strip()
                      for code in match.group("codes").split(","))
        reason = match.group("reason")
        if reason is not None:
            reason = reason.strip() or None
        suppressions.append(Suppression(
            line=index,
            target_line=index + 1 if standalone else index,
            codes=codes,
            reason=reason))
    return suppressions


class SuppressionIndex:
    """Per-file lookup: is (line, code) suppressed?  Tracks usage."""

    def __init__(self, suppressions: List[Suppression]):
        self._by_line: Dict[int, List[Suppression]] = {}
        self.all = suppressions
        for suppression in suppressions:
            self._by_line.setdefault(suppression.target_line,
                                     []).append(suppression)

    def matches(self, line: int, code: str) -> bool:
        """True (and mark used) when a suppression covers the finding.

        Suppressions missing their reason still *suppress* — RPL000
        already reports the missing reason; double-reporting the
        underlying finding would punish the same mistake twice.
        """
        for suppression in self._by_line.get(line, ()):
            if code in suppression.codes:
                suppression.used = True
                return True
        return False

"""The lint pipeline: parse -> check -> suppress -> meta-findings.

Order matters: suppressions are matched while the checkers' findings
stream through (marking them used), and only then can RPL009 (unused
suppression) be decided.  RPL000 (missing reason) is independent of
usage — an undocumented suppression is a problem whether or not it
currently fires.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.checkers import CHECKERS
from repro.lint.findings import Finding
from repro.lint.source import Project

__all__ = ["run_lint", "run_checks"]


def run_checks(project: Project,
               checkers: Sequence = CHECKERS) -> List[Finding]:
    """Run ``checkers`` over an already-loaded project.

    Returns the sorted surviving findings: checker findings not covered
    by an inline suppression, plus RPL000 for every suppression missing
    its mandatory reason and RPL009 for every suppression that silenced
    nothing.
    """
    by_rel = {source.rel: source for source in project.files}
    survivors: List[Finding] = []
    for checker in checkers:
        for finding in checker.check(project):
            source = by_rel.get(finding.path)
            if source is not None and source.suppressions.matches(
                    finding.line, finding.code):
                continue
            survivors.append(finding)

    for source in project.files:
        for suppression in source.suppressions.all:
            if suppression.reason is None:
                survivors.append(Finding(
                    path=source.rel, line=suppression.line, col=0,
                    code="RPL000",
                    symbol=",".join(suppression.codes),
                    message=("suppression without a reason — write "
                             "# repro-lint: disable="
                             f"{','.join(suppression.codes)} "
                             "(why this is safe)")))
            if not suppression.used:
                survivors.append(Finding(
                    path=source.rel, line=suppression.line, col=0,
                    code="RPL009",
                    symbol=",".join(suppression.codes),
                    message=(f"suppression of "
                             f"{','.join(suppression.codes)} silences "
                             f"nothing — remove it so it cannot mask a "
                             f"future regression")))
    return sorted(survivors)


def run_lint(paths: Sequence[Path],
             project_root: Optional[Path] = None,
             checkers: Sequence = CHECKERS) -> List[Finding]:
    """Lint ``paths`` (files or directories) and return the findings.

    ``project_root`` anchors the reported relative paths; it defaults to
    the common parent the caller runs from (the current directory).
    """
    root = project_root if project_root is not None else Path.cwd()
    project = Project.load([Path(p) for p in paths], root)
    return run_checks(project, checkers)

"""repro-lint: AST-based invariant checkers for this repository.

The repo's load-bearing guarantees — trace-identical fast/legacy
kernels, byte-identical sim/UDP backends, off-by-default knobs — are
otherwise enforced only by runtime equivalence tests, which catch
violations late and only on exercised paths.  This package turns those
invariants into machine-checked rules at review time:

=========  ==============================================================
checker    invariant
=========  ==============================================================
RPL01x     **determinism** — sim-reachable modules read no wall clocks,
           global/unseeded RNG streams or environment variables; all
           randomness flows through explicitly seeded
           :class:`random.Random` instances (``util/rng.py``).
RPL02x     **proc purity** — event-kernel generator procs never block
           (``time.sleep``, file/socket I/O) and only yield the types
           the kernel understands (numbers, ``None``, futures, procs).
RPL03x     **wire-schema sync** — ``net/wire.py``'s kind order and field
           tables, ``net/protocol.py``'s kind constants and
           ``core/peer.py``'s handler dispatch stay mutually consistent,
           so an unregistered kind or field drift is a lint error
           instead of a runtime ``WireError``.
RPL04x     **hot-path hygiene** — classes in designated hot modules
           carry ``__slots__``; no per-instance bound-method dispatch
           dicts anywhere.
RPL05x     **layering** — the import DAG (util -> sim -> ir -> net ->
           dht -> core -> corpus -> baselines/eval/cluster -> cli) has
           no upward edges.
RPL06x     **config discipline** — every ``core/config.py`` knob
           defaults to its reviewed off/legacy value, pinned by a
           declared table.
=========  ==============================================================

Each finding carries a stable ``RPLxxx`` code.  A finding can be
silenced inline with::

    something_flagged()  # repro-lint: disable=RPL010 (reason here)

(the reason is mandatory — a bare suppression is itself a finding,
RPL000 — and a suppression that silences nothing is RPL009), or
grandfathered in a committed baseline file (``lint_baseline.json``).

Run it as ``repro lint`` (see ``repro lint --list-codes``) or through
:func:`run_lint`.
"""

from repro.lint.findings import Finding, format_findings
from repro.lint.runner import run_lint
from repro.lint.baseline import (Baseline, compare_with_baseline,
                                 load_baseline, write_baseline)
from repro.lint.codes import CODES

__all__ = ["Finding", "format_findings", "run_lint", "Baseline",
           "compare_with_baseline", "load_baseline", "write_baseline",
           "CODES"]

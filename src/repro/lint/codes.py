"""The RPL error-code registry.

One entry per code: which checker owns it, what it flags, and which
repo invariant it protects.  ``repro lint --list-codes`` renders this
table; CONTRIBUTING.md mirrors it for reviewers.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

__all__ = ["Code", "CODES", "checker_of"]


class Code(NamedTuple):
    checker: str    #: owning checker (suppression bookkeeping + docs)
    summary: str    #: one-line description of what the code flags
    invariant: str  #: the repo guarantee the rule protects


CODES: Dict[str, Code] = {
    # Suppression bookkeeping (the runner itself) ----------------------
    "RPL000": Code(
        "suppressions",
        "suppression comment without a (reason)",
        "every disabled rule records why it is safe to disable"),
    "RPL009": Code(
        "suppressions",
        "suppression comment that silences no finding",
        "stale suppressions do not hide future regressions"),

    # Determinism ------------------------------------------------------
    "RPL010": Code(
        "determinism",
        "wall-clock read (time.time/monotonic/perf_counter, "
        "datetime.now, ...) in a sim-reachable module",
        "simulation results are a pure function of the seed; virtual "
        "time comes only from the sim clock"),
    "RPL011": Code(
        "determinism",
        "global or unseeded RNG (bare random.*, random.Random(), "
        "os.urandom, uuid.uuid4, secrets.*)",
        "all randomness flows through explicitly seeded "
        "random.Random streams (util/rng.py)"),
    "RPL012": Code(
        "determinism",
        "environment read (os.environ/os.getenv) in a sim-reachable "
        "module",
        "a simulation run cannot change behaviour with ambient "
        "process state"),

    # Proc purity ------------------------------------------------------
    "RPL020": Code(
        "proc-purity",
        "blocking call (time.sleep, open, socket/subprocess I/O) "
        "inside an event-kernel proc",
        "procs advance only through the virtual clock; one blocking "
        "call stalls the whole single-threaded kernel"),
    "RPL021": Code(
        "proc-purity",
        "yield of a type the kernel cannot await (string, bool, "
        "dict/list/set/tuple literal)",
        "a proc may only yield numbers, None, Futures or Procs "
        "(repro.sim.procs)"),
    "RPL022": Code(
        "proc-purity",
        "negative literal sleep yielded from a proc",
        "the kernel rejects negative sleeps at runtime; catch them "
        "at review time"),

    # Wire-schema sync -------------------------------------------------
    "RPL030": Code(
        "wire-schema",
        "net/wire.py _SCHEMAS and _KIND_ORDER disagree (missing or "
        "duplicate kind)",
        "every codec schema has exactly one stable tag"),
    "RPL031": Code(
        "wire-schema",
        "protocol kind with neither a wire schema nor a sim-only "
        "declaration",
        "a kind that can leave the simulator must be encodable; "
        "sim-only kinds are declared, not forgotten"),
    "RPL032": Code(
        "wire-schema",
        "handler registered under a string literal instead of a "
        "protocol constant",
        "kind strings have one definition (net/protocol.py); "
        "literals drift silently"),
    "RPL033": Code(
        "wire-schema",
        "handler table names a method AlvisPeer does not define",
        "an unregistered kind fails at review time, not as a "
        "runtime AttributeError"),
    "RPL034": Code(
        "wire-schema",
        "handled request kind missing from the wire schema (and not "
        "declared sim-only)",
        "every kind a peer can receive over UDP must decode"),
    "RPL035": Code(
        "wire-schema",
        "message payload field absent from the kind's wire field "
        "table",
        "the codec raises UnknownKindError for unknown fields; "
        "catch the drift statically"),
    "RPL036": Code(
        "wire-schema",
        "stale sim-only declaration (kind unknown, or now has a "
        "wire schema)",
        "the sim-only list shrinks as the codec grows; stale "
        "entries mask real RPL031 drift"),

    # Hot-path hygiene -------------------------------------------------
    "RPL040": Code(
        "hot-path",
        "class in a designated hot module without __slots__",
        "per-instance __dict__s dominate the footprint at 100k "
        "peers (see PR 7)"),
    "RPL041": Code(
        "hot-path",
        "per-instance dict of bound methods assigned in __init__",
        "dispatch tables are class-level (kind -> method name); "
        "bound-method dicts cost ~enough per peer to dominate "
        "empty-peer memory"),

    # Layering ---------------------------------------------------------
    "RPL050": Code(
        "layering",
        "upward import against the declared layer DAG",
        "util -> sim -> ir -> net -> dht -> core -> corpus -> "
        "baselines/eval/cluster -> cli stays acyclic"),
    "RPL051": Code(
        "layering",
        "module outside the declared layer table",
        "new top-level packages take an explicit rank before they "
        "grow imports"),

    # Config discipline ------------------------------------------------
    "RPL060": Code(
        "config-discipline",
        "AlvisConfig default differs from the pinned table",
        "every knob defaults to its reviewed off/legacy value, so "
        "seed traffic and traces stay comparable across PRs"),
    "RPL061": Code(
        "config-discipline",
        "AlvisConfig knob missing from the pinned table",
        "a new knob's default is reviewed (and pinned) before it "
        "ships"),
    "RPL062": Code(
        "config-discipline",
        "pinned knob that AlvisConfig no longer defines",
        "the pinned table tracks the real config surface"),
}


def checker_of(code: str) -> str:
    """Owning checker name for ``code`` (``"?"`` when unknown)."""
    entry = CODES.get(code)
    return entry.checker if entry is not None else "?"

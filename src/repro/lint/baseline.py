"""The committed baseline of grandfathered findings.

The baseline stores finding *fingerprints* — ``(path, code, symbol)``
with a count — never line numbers, so unrelated edits to a file do not
churn it.  The tier-1 gate (``tests/test_lint_repo.py``) asserts the
baseline is *exact*: no finding outside it (regressions fail the build)
and no stale entry in it (fixed findings must be removed, keeping the
grandfathered debt monotonically shrinking).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding, fingerprint

__all__ = ["Baseline", "load_baseline", "write_baseline",
           "compare_with_baseline"]

_VERSION = 1

#: fingerprint -> allowed count
Baseline = Dict[Tuple[str, str, str], int]


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file (empty baseline when the file is missing)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}")
    baseline: Baseline = {}
    for entry in data.get("findings", []):
        key = (entry["path"], entry["code"], entry["symbol"])
        baseline[key] = baseline.get(key, 0) + int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the baseline capturing exactly ``findings``."""
    counts = Counter(fingerprint(f) for f in findings)
    entries = [{"path": p, "code": c, "symbol": s, "count": n}
               for (p, c, s), n in sorted(counts.items())]
    path.write_text(
        json.dumps({"version": _VERSION, "findings": entries}, indent=2)
        + "\n",
        encoding="utf-8")


def compare_with_baseline(findings: Iterable[Finding], baseline: Baseline
                          ) -> Tuple[List[Finding],
                                     List[Tuple[str, str, str]]]:
    """Split into (new findings, stale baseline fingerprints).

    A finding matching a baseline fingerprint consumes one unit of its
    count; surplus findings are new, surplus baseline counts are stale.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in sorted(findings):
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items()
                   for _ in range(count))
    return new, stale

"""The checker registry (one module per invariant)."""

from repro.lint.checkers import (config_defaults, determinism, hotpath,
                                 layering, proc_purity, wire_schema)

#: Every checker, in documentation order.  Each module exposes
#: ``NAME`` (the checker's suppression/docs name) and ``check(project)``
#: yielding findings.
CHECKERS = (
    determinism,
    proc_purity,
    wire_schema,
    hotpath,
    layering,
    config_defaults,
)

__all__ = ["CHECKERS"]

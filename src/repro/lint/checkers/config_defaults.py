"""RPL06x — config discipline: every knob defaults to off / legacy.

The seed comparison baseline (and every A/B experiment since PR 1)
assumes ``AlvisConfig()`` reproduces the paper's cold query path:
feature knobs off, costs-free legacy models, the paper's Section 4
parameter values.  A default silently flipped in a feature PR changes
every benchmark at once and invalidates the committed baselines, so the
defaults are pinned here.  Changing a default is allowed — but it must
be changed *in both places*, which makes it a visible, reviewable event
(RPL060).  New knobs must be added to the pinned table (RPL061), and
removed knobs must leave it (RPL062).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator

from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "config-discipline"

CONFIG_PATH = "core/config.py"
CONFIG_CLASS = "AlvisConfig"

#: knob -> pinned default.  Feature switches are pinned off; numeric
#: parameters are pinned to the paper's values (Section 4 / the HDK and
#: QDI companion papers) or to the seed's legacy behaviour.
PINNED_DEFAULTS: Dict[str, Any] = {
    # posting-list truncation / HDK / QDI parameters (paper values)
    "truncation_k": 20,
    "df_max": 40,
    "s_max": 3,
    "proximity_window": 12,
    "max_expansions_per_key": 20,
    "expansion_min_df": 2,
    "qdi_activation_threshold": 3,
    "qdi_decay": 0.5,
    "qdi_eviction_threshold": 0.25,
    "qdi_maintenance_interval": 50,
    "qdi_harvest_fanout": 16,
    # retrieval
    "result_k": 10,
    "prune_on_truncated": True,
    "parallel_probes": True,
    "refine_with_local_engines": False,
    "refine_pool_factor": 3,
    # query-engine feature switches (off = seed-comparable traces)
    "cache_lookups": False,
    "lookup_cache_size": 4096,
    "cache_bytes": 0,
    "cache_ttl": 0,
    "batch_lookups": False,
    "topk_early_stop": False,
    # async runtime (off = synchronous compatibility path)
    "async_queries": False,
    "dispatch_window": 0.0,
    "pipeline_levels": False,
    "request_timeout": 0.0,
    # indexing-phase scale-out (off = seed-comparable publish traffic)
    "packed_postings": False,
    "batch_index_lookups": False,
    # congestion control (off = unthrottled runtime, E8 baseline)
    "congestion_control": False,
    "congestion_initial_window": 4.0,
    "congestion_max_window": 64.0,
    "congestion_max_retransmits": 20,
    "congestion_retransmit_timeout": 0.25,
    # service-queue model (0 = infinite capacity, the legacy transport)
    "service_rate": 0.0,
    "queue_capacity": 64,
    "service_reject_cost": 0.5,
}


def check(project: Project) -> Iterator[Finding]:
    source = project.find(CONFIG_PATH)
    if source is None:
        return
    config = _find_class(source)
    if config is None:
        return
    declared = _declared_defaults(config)
    for name, (default, node) in declared.items():
        if name not in PINNED_DEFAULTS:
            yield Finding(
                path=source.rel, line=node.lineno, col=node.col_offset,
                code="RPL061", symbol=name,
                message=(f"config knob {name!r} is not in the pinned "
                         f"defaults table (repro.lint.checkers."
                         f"config_defaults.PINNED_DEFAULTS) — declare "
                         f"its off/legacy default there"))
        elif not _defaults_equal(default, PINNED_DEFAULTS[name]):
            yield Finding(
                path=source.rel, line=node.lineno, col=node.col_offset,
                code="RPL060", symbol=name,
                message=(f"config knob {name!r} defaults to {default!r} "
                         f"but is pinned to {PINNED_DEFAULTS[name]!r} — "
                         f"a changed default silently changes every "
                         f"benchmark; update the pinned table in the "
                         f"same change if this is intentional"))
    for name in sorted(set(PINNED_DEFAULTS) - set(declared)):
        yield Finding(
            path=source.rel, line=config.lineno, col=config.col_offset,
            code="RPL062", symbol=name,
            message=(f"pinned knob {name!r} no longer exists on "
                     f"{CONFIG_CLASS} — drop it from the pinned table"))


def _find_class(source: SourceFile):
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            return node
    return None


def _declared_defaults(config: ast.ClassDef):
    declared = {}
    for child in config.body:
        if isinstance(child, ast.AnnAssign) \
                and isinstance(child.target, ast.Name) \
                and child.value is not None:
            try:
                default = ast.literal_eval(child.value)
            except ValueError:
                continue  # non-literal default (factory etc.)
            declared[child.target.id] = (default, child)
    return declared


def _defaults_equal(declared: Any, pinned: Any) -> bool:
    # bool is an int subclass; don't let True == 1 mask a type change.
    if isinstance(declared, bool) != isinstance(pinned, bool):
        return False
    return declared == pinned and type(declared) is type(pinned)

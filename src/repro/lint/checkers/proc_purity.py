"""RPL02x — proc purity: event-kernel generators never block.

A proc (:mod:`repro.sim.procs`) is a generator the single-threaded
kernel steps; one ``time.sleep`` or socket read inside it stalls every
peer in the simulation, and a yield of anything but a number, ``None``,
``Future`` or ``Proc`` is a runtime ``TypeError`` the kernel only raises
on the paths tests happen to exercise.

Procs are identified statically: any generator function whose call is
passed to a ``.spawn(...)`` (or ``Proc(...)``) anywhere in the scanned
set, closed transitively over same-file ``yield from helper(...)``
delegation.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.checkers.common import ImportMap
from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "proc-purity"

_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "open", "input",
    "socket.socket", "socket.create_connection",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "os.system", "os.popen", "os.waitpid",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.request",
})


def check(project: Project) -> Iterator[Finding]:
    spawned = _spawned_names(project)
    for source in project.files:
        yield from _check_file(source, spawned)


def _spawned_names(project: Project) -> Set[str]:
    """Function/method names whose generators are handed to the kernel."""
    names: Set[str] = set()
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "spawn" and node.args:
                callee = _call_terminal_name(node.args[0])
                if callee:
                    names.add(callee)
            elif isinstance(node.func, ast.Name) \
                    and node.func.id == "Proc" and len(node.args) >= 2:
                callee = _call_terminal_name(node.args[1])
                if callee:
                    names.add(callee)
    return names


def _call_terminal_name(node: ast.expr) -> Optional[str]:
    """``f(...)`` / ``self.f(...)`` / ``mod.f(...)`` -> ``"f"``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _check_file(source: SourceFile, spawned: Set[str]
                ) -> Iterator[Finding]:
    generators: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_generator(node):
            generators[node.name] = node

    # Seed with spawned generators, then close over same-file
    # `yield from helper(...)` delegation.
    procs = {name for name in generators if name in spawned}
    changed = True
    while changed:
        changed = False
        for name in list(procs):
            for inner in ast.walk(generators[name]):
                if isinstance(inner, ast.YieldFrom):
                    callee = _call_terminal_name(inner.value)
                    if callee in generators and callee not in procs:
                        procs.add(callee)
                        changed = True

    imports = ImportMap(source.tree)
    for name in sorted(procs):
        yield from _check_proc(source, imports, generators[name])


def _is_generator(node: ast.AST) -> bool:
    for inner in ast.walk(node):
        if inner is node:
            continue
        if isinstance(inner,
                      (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # don't descend conceptually — but ast.walk does;
            # nested yields are filtered below via ownership check
        if isinstance(inner, (ast.Yield, ast.YieldFrom)) \
                and _owner(node, inner) is node:
            return True
    return False


def _owner(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """The innermost function node of ``root`` containing ``target``."""
    class _Finder(ast.NodeVisitor):
        def __init__(self):
            self.stack = [root]
            self.found: Optional[ast.AST] = None

        def visit(self, node: ast.AST):
            if node is target:
                self.found = self.stack[-1]
                return
            nested = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            if nested and node is not root:
                self.stack.append(node)
            super().generic_visit(node)
            if nested and node is not root:
                self.stack.pop()

    finder = _Finder()
    finder.visit(root)
    return finder.found


def _check_proc(source: SourceFile, imports: ImportMap,
                proc: ast.FunctionDef) -> Iterator[Finding]:
    for node in ast.walk(proc):
        if isinstance(node, ast.Call):
            name = imports.resolve_call(node.func)
            if name in _BLOCKING_CALLS:
                yield Finding(
                    path=source.rel, line=node.lineno,
                    col=node.col_offset, code="RPL020",
                    symbol=f"{proc.name}:{name}",
                    message=(f"blocking call {name}() inside event-kernel "
                             f"proc {proc.name!r} stalls the whole "
                             f"simulation"))
        elif isinstance(node, ast.Yield) and node.value is not None \
                and _owner(proc, node) is proc:
            yield from _check_yield(source, proc, node)


def _check_yield(source: SourceFile, proc: ast.FunctionDef,
                 node: ast.Yield) -> Iterator[Finding]:
    value = node.value
    bad_type: Optional[str] = None
    if isinstance(value, ast.Constant):
        if isinstance(value.value, bool):
            bad_type = "bool"
        elif isinstance(value.value, (str, bytes)):
            bad_type = type(value.value).__name__
    elif isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple,
                            ast.DictComp, ast.ListComp, ast.SetComp,
                            ast.JoinedStr)):
        bad_type = type(value).__name__.lower()
    elif isinstance(value, ast.UnaryOp) \
            and isinstance(value.op, ast.USub) \
            and isinstance(value.operand, ast.Constant) \
            and isinstance(value.operand.value, (int, float)):
        yield Finding(
            path=source.rel, line=node.lineno, col=node.col_offset,
            code="RPL022", symbol=f"{proc.name}:-{value.operand.value}",
            message=(f"proc {proc.name!r} yields the negative sleep "
                     f"-{value.operand.value}; the kernel rejects "
                     f"negative delays"))
        return
    if bad_type is not None:
        yield Finding(
            path=source.rel, line=node.lineno, col=node.col_offset,
            code="RPL021", symbol=f"{proc.name}:{bad_type}",
            message=(f"proc {proc.name!r} yields a {bad_type}; the "
                     f"kernel only awaits numbers, None, Futures and "
                     f"Procs"))

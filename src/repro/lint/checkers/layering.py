"""RPL05x — layering: the repro package imports form a DAG.

The layer order (low to high) and the one deliberate deviation from the
"net above dht/ir" intuition:

    util < sim < ir < net < dht < core < corpus/lint
         < baselines/eval/cluster < cli < __main__

``ir`` sits *below* ``net`` because the wire codec serializes
``PostingList`` values — the codec depends on the data model, never the
reverse.  ``dht`` sits below ``core`` (peers own their routing state),
and ``lint`` is a leaf consumer like ``corpus``.

A module may import (a) any strictly lower layer, or (b) its own
segment.  Anything else is an upward edge (RPL050); a module whose
segment is missing from the table entirely is RPL051, so new
subpackages must take a position in the order rather than float outside
it.  ``if TYPE_CHECKING:`` imports are annotation-only and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.checkers.common import walk_skipping_type_checking
from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "layering"

#: Segment (first path component under ``repro/``) -> rank.  Lower ranks
#: must not import higher ones.
LAYER_RANKS = {
    "util": 0,
    "sim": 1,
    "ir": 2,
    "net": 3,
    "dht": 4,
    "core": 5,
    "corpus": 6,
    "lint": 6,
    "baselines": 7,
    "eval": 7,
    "cluster": 7,
    "scenarios": 7,
    "cli": 8,
    "__main__": 9,
    "__init__": 9,
}


def segment_of(repro_rel: str) -> str:
    """Layer segment of a repro-relative path (``dht/node.py`` -> ``dht``)."""
    head = repro_rel.split("/", 1)[0]
    if head.endswith(".py"):
        head = head[:-3]
    return head


def check(project: Project) -> Iterator[Finding]:
    for source in project.files:
        if source.repro_rel is None:
            continue
        yield from _check_file(source)


def _check_file(source: SourceFile) -> Iterator[Finding]:
    own_segment = segment_of(source.repro_rel)
    own_rank = LAYER_RANKS.get(own_segment)
    if own_rank is None:
        yield Finding(
            path=source.rel, line=1, col=0, code="RPL051",
            symbol=own_segment,
            message=(f"module segment {own_segment!r} has no rank in "
                     f"the layer table "
                     f"(repro.lint.checkers.layering.LAYER_RANKS) — "
                     f"place new subpackages in the import order"))
        return
    for node, _in_function in walk_skipping_type_checking(source.tree):
        target = _import_segment(node)
        if target is None:
            continue
        if target == own_segment:
            continue
        target_rank = LAYER_RANKS.get(target)
        if target_rank is None:
            yield Finding(
                path=source.rel, line=node.lineno, col=node.col_offset,
                code="RPL051", symbol=target,
                message=(f"import of repro.{target} — segment has no "
                         f"rank in the layer table"))
        elif target_rank >= own_rank:
            yield Finding(
                path=source.rel, line=node.lineno, col=node.col_offset,
                code="RPL050", symbol=f"{own_segment}->{target}",
                message=(f"upward import: {own_segment} (rank "
                         f"{own_rank}) imports repro.{target} (rank "
                         f"{target_rank}); the layer DAG flows "
                         f"util < sim < ir < net < dht < core < ... "
                         f"< cli"))


def _import_segment(node: ast.AST) -> Optional[str]:
    """The repro segment an import statement reaches, if any."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                return parts[1] if len(parts) > 1 else "__init__"
    elif isinstance(node, ast.ImportFrom) and node.module is not None \
            and node.level == 0:
        parts = node.module.split(".")
        if parts[0] == "repro":
            if len(parts) > 1:
                return parts[1]
            # `from repro import X` — X is the segment (subpackage) or
            # a top-level re-export; treat named subpackages as edges.
            for alias in node.names:
                if alias.name in LAYER_RANKS:
                    return alias.name
            return "__init__"
    return None

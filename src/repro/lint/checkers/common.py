"""Shared AST utilities: import-alias tracking and name resolution.

The checkers care about *which library object* a call reaches, not how
the module spells it — ``import time as _time; _time.perf_counter()``
and ``from time import perf_counter; perf_counter()`` are the same
wall-clock read.  :class:`ImportMap` resolves both spellings back to the
canonical dotted name (``"time.perf_counter"``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["ImportMap", "dotted_name", "resolve_str_node",
           "module_constants", "walk_skipping_type_checking"]


class ImportMap:
    """Canonical dotted names for a module's imported bindings."""

    def __init__(self, tree: ast.Module):
        #: local name -> canonical module or attribute path
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds
                    # the full path to c.
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module is not None:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Canonical dotted name of a call target, if resolvable.

        ``Name`` nodes resolve through the import bindings; attribute
        chains resolve their base name and append the attribute path.
        Unresolvable bases (locals, self, call results) return ``None``.
        """
        parts = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.bindings.get(node.id)
        if base is None:
            if parts:
                return None           # attribute on an unknown local
            return node.id            # bare builtin-style name
        parts.append(base)
        return ".".join(reversed(parts))


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute/name chain as a string, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_str_node(node: ast.expr,
                     constants: Dict[str, str]) -> Optional[str]:
    """String value of a literal, ``NAME`` or ``mod.NAME`` expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    if isinstance(node, ast.Attribute):
        return constants.get(node.attr)
    return None


def module_constants(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` string assignments of a module."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
    return constants


def walk_skipping_type_checking(tree: ast.AST
                                ) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, in_function)`` skipping ``if TYPE_CHECKING:`` bodies.

    Annotation-only imports create no runtime dependency, so the
    layering checker ignores them; ``in_function`` lets callers treat
    lazy function-local imports differently if they ever need to.
    """
    def visit(node: ast.AST, in_function: bool
              ) -> Iterator[Tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If):
                test_name = dotted_name(child.test)
                if test_name in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
                    for orelse in child.orelse:
                        yield orelse, in_function
                        yield from visit(orelse, in_function)
                    continue
            nested = in_function or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            yield child, nested
            yield from visit(child, nested)

    yield from visit(tree, False)

"""RPL03x — wire-schema sync across codec, protocol and dispatch.

Three artifacts must agree for a message to survive the UDP backend:
the kind constants (``net/protocol.py``), the codec's tag order and
per-kind field tables (``net/wire.py``), and the peer's handler dispatch
(``core/peer.py``).  PR 6 pinned the codec's *sizes* with golden tests;
this checker pins its *coverage* — an unregistered kind, a literal-typed
handler key or a payload field the codec cannot carry becomes a lint
error instead of a runtime ``WireError``.

Kinds that deliberately never cross a socket (sim-internal index
construction and churn) are declared in :data:`SIM_ONLY_KINDS`; the
declaration is itself checked for staleness (RPL036).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.checkers.common import module_constants, resolve_str_node
from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "wire-schema"

WIRE_PATH = "net/wire.py"
PROTOCOL_PATH = "net/protocol.py"
PEER_PATH = "core/peer.py"

#: Kind *values* that intentionally have no wire schema: they exist only
#: inside one simulator process (index construction, churn handover,
#: replication), never on the UDP path.
SIM_ONLY_KINDS = frozenset({
    "PublishKey",       # contributor -> responsible peer, build phase
    "PublishAck",       # its ack, build phase
    "ExpandNotify",     # HDK expansion round, build phase
    "IndexHandover",    # churn key-range handover
    "ReplicaPush",      # replication push, crash-fault tolerance
})


def check(project: Project) -> Iterator[Finding]:
    wire = project.find(WIRE_PATH)
    proto = project.find(PROTOCOL_PATH)
    if wire is None or proto is None:
        return  # cross-file checker: runs only when the codec is scanned

    constants = module_constants(proto.tree)  # NAME -> kind value
    kind_values = set(constants.values())
    wire_consts = dict(constants)
    wire_consts.update(module_constants(wire.tree))  # ACK/ERR/HELLO/...

    schemas = _extract_schemas(wire, wire_consts)
    kind_order = _extract_kind_order(wire, wire_consts)
    schema_kinds = {kind for kind, _fields, _node in schemas}

    yield from _check_order(wire, schemas, kind_order, schema_kinds)
    yield from _check_protocol_coverage(proto, constants, schema_kinds)
    yield from _check_sim_only_declaration(wire, kind_values, schema_kinds)

    peer = project.find(PEER_PATH)
    if peer is not None:
        yield from _check_handlers(peer, constants, kind_values,
                                   schema_kinds)

    field_tables = {kind: fields for kind, fields, _node in schemas}
    for source in project.files:
        yield from _check_payload_literals(source, constants, field_tables)


# ----------------------------------------------------------------------
# Extraction (shared with the golden test against wire.message_kinds())
# ----------------------------------------------------------------------

def _find_assignment(tree: ast.Module, name: str) -> Optional[ast.expr]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name:
            return node.value
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == name and node.value is not None:
            return node.value
    return None


def _extract_schemas(wire: SourceFile, constants: Dict[str, str]
                     ) -> List[Tuple[str, Tuple[str, ...], ast.expr]]:
    """``(kind, field names, key node)`` for every ``_SCHEMAS`` entry."""
    value = _find_assignment(wire.tree, "_SCHEMAS")
    entries: List[Tuple[str, Tuple[str, ...], ast.expr]] = []
    if not isinstance(value, ast.Dict):
        return entries
    for key, schema in zip(value.keys, value.values):
        if key is None:
            continue
        kind = resolve_str_node(key, constants)
        if kind is None:
            continue
        fields: Tuple[str, ...] = ()
        if isinstance(schema, ast.Dict):
            fields = tuple(
                field.value for field in schema.keys
                if isinstance(field, ast.Constant)
                and isinstance(field.value, str))
        entries.append((kind, fields, key))
    return entries


def _extract_kind_order(wire: SourceFile, constants: Dict[str, str]
                        ) -> List[Tuple[str, ast.expr]]:
    value = _find_assignment(wire.tree, "_KIND_ORDER")
    entries: List[Tuple[str, ast.expr]] = []
    if not isinstance(value, (ast.Tuple, ast.List)):
        return entries
    for element in value.elts:
        kind = resolve_str_node(element, constants)
        if kind is not None:
            entries.append((kind, element))
    return entries


def extracted_message_kinds(project: Project
                            ) -> Dict[str, Tuple[str, ...]]:
    """Static view of the codec schema, for the golden test.

    Mirrors :func:`repro.net.wire.message_kinds` — kind -> field names
    in tag order — but derived purely from the AST.
    """
    wire = project.find(WIRE_PATH)
    proto = project.find(PROTOCOL_PATH)
    if wire is None or proto is None:
        raise ValueError("wire/protocol modules not in the scanned set")
    constants = module_constants(proto.tree)
    constants.update(module_constants(wire.tree))
    field_tables = {kind: fields for kind, fields, _node
                    in _extract_schemas(wire, constants)}
    return {kind: field_tables[kind]
            for kind, _node in _extract_kind_order(wire, constants)
            if kind in field_tables}


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------

def _check_order(wire: SourceFile,
                 schemas: List[Tuple[str, Tuple[str, ...], ast.expr]],
                 kind_order: List[Tuple[str, ast.expr]],
                 schema_kinds: Set[str]) -> Iterator[Finding]:
    seen: Set[str] = set()
    order_kinds: Set[str] = set()
    for kind, node in kind_order:
        order_kinds.add(kind)
        if kind in seen:
            yield _finding(wire, node, "RPL030", kind,
                           f"kind {kind!r} appears twice in _KIND_ORDER "
                           f"(tags must stay unique and stable)")
        seen.add(kind)
        if kind not in schema_kinds:
            yield _finding(wire, node, "RPL030", kind,
                           f"kind {kind!r} has a wire tag but no entry "
                           f"in _SCHEMAS")
    for kind, _fields, node in schemas:
        if kind not in order_kinds:
            yield _finding(wire, node, "RPL030", kind,
                           f"kind {kind!r} has a schema but no tag in "
                           f"_KIND_ORDER (append it — tags are stable)")


def _check_protocol_coverage(proto: SourceFile, constants: Dict[str, str],
                             schema_kinds: Set[str]) -> Iterator[Finding]:
    for name, kind in sorted(constants.items()):
        if kind in schema_kinds or kind in SIM_ONLY_KINDS:
            continue
        yield Finding(
            path=proto.rel, line=1, col=0, code="RPL031", symbol=kind,
            message=(f"protocol kind {name} = {kind!r} has no wire "
                     f"schema and is not declared sim-only "
                     f"(repro.lint.checkers.wire_schema.SIM_ONLY_KINDS)"))


def _check_sim_only_declaration(wire: SourceFile, kind_values: Set[str],
                                schema_kinds: Set[str]
                                ) -> Iterator[Finding]:
    for kind in sorted(SIM_ONLY_KINDS):
        if kind not in kind_values:
            yield Finding(
                path=wire.rel, line=1, col=0, code="RPL036", symbol=kind,
                message=(f"SIM_ONLY_KINDS declares {kind!r}, which is "
                         f"not a protocol kind"))
        elif kind in schema_kinds:
            yield Finding(
                path=wire.rel, line=1, col=0, code="RPL036", symbol=kind,
                message=(f"SIM_ONLY_KINDS declares {kind!r}, but the "
                         f"codec now has a schema for it — drop the "
                         f"declaration"))


def _check_handlers(peer: SourceFile, constants: Dict[str, str],
                    kind_values: Set[str], schema_kinds: Set[str]
                    ) -> Iterator[Finding]:
    peer_class = None
    for node in peer.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "AlvisPeer":
            peer_class = node
            break
    if peer_class is None:
        return
    methods = {child.name
               for child in peer_class.body
               if isinstance(child, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
    table = None
    for child in peer_class.body:
        if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                and isinstance(child.targets[0], ast.Name) \
                and child.targets[0].id == "_HANDLER_NAMES":
            table = child.value
        elif isinstance(child, ast.AnnAssign) \
                and isinstance(child.target, ast.Name) \
                and child.target.id == "_HANDLER_NAMES":
            table = child.value
    if not isinstance(table, ast.Dict):
        return
    for key, value in zip(table.keys, table.values):
        if key is None:
            continue
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            kind: Optional[str] = key.value
            yield _finding(
                peer, key, "RPL032", key.value,
                f"handler for {key.value!r} is keyed by a string "
                f"literal; use the protocol constant so the kind has "
                f"one definition")
        else:
            # protocol.X / X — resolve via the constant's name.
            kind = resolve_str_node(key, constants)
            if kind is None:
                continue  # computed key; nothing to check statically
        if kind not in kind_values:
            yield _finding(
                peer, key, "RPL032", kind,
                f"handler kind {kind!r} is not a protocol constant "
                f"value")
        elif kind not in schema_kinds and kind not in SIM_ONLY_KINDS:
            yield _finding(
                peer, key, "RPL034", kind,
                f"peer handles {kind!r}, which has no wire schema and "
                f"is not declared sim-only — it would fail to decode on "
                f"the UDP backend")
        if isinstance(value, ast.Constant) \
                and isinstance(value.value, str) \
                and value.value not in methods:
            yield _finding(
                peer, value, "RPL033", value.value,
                f"handler table names {value.value!r}, which AlvisPeer "
                f"does not define")


def _check_payload_literals(source: SourceFile, constants: Dict[str, str],
                            field_tables: Dict[str, Tuple[str, ...]]
                            ) -> Iterator[Finding]:
    """Literal payload dicts must only use fields the codec carries."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        kind_node: Optional[ast.expr] = None
        payload_node: Optional[ast.expr] = None
        if isinstance(node.func, ast.Name) and node.func.id == "Message":
            kind_node = _argument(node, 2, "kind")
            payload_node = _argument(node, 3, "payload")
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "reply" and len(node.args) >= 1:
            kind_node = node.args[0]
            payload_node = _argument(node, 1, "payload")
        if kind_node is None or not isinstance(payload_node, ast.Dict):
            continue
        kind = resolve_str_node(kind_node, constants)
        fields = field_tables.get(kind) if kind is not None else None
        if fields is None:
            continue
        for key in payload_node.keys:
            if isinstance(key, ast.Constant) \
                    and isinstance(key.value, str) \
                    and key.value not in fields:
                yield _finding(
                    source, key, "RPL035", f"{kind}.{key.value}",
                    f"payload field {key.value!r} of {kind!r} is not in "
                    f"the wire field table (net/wire.py _SCHEMAS) — the "
                    f"UDP codec silently drops unknown fields")


def _argument(node: ast.Call, index: int, name: str
              ) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    if len(node.args) > index:
        return node.args[index]
    return None


def _finding(source: SourceFile, node: ast.AST, code: str, symbol: str,
             message: str) -> Finding:
    return Finding(path=source.rel, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0), code=code,
                   symbol=symbol, message=message)

"""RPL04x — hot-path hygiene for the 100k-peer scale target.

PR 7 bought the scale-out kernel its headroom largely through
``__slots__`` on the objects allocated per event / per peer / per key.
A slotless class slipping back into one of those modules silently costs
~3x the memory at 100k peers, so the hot modules are pinned here
(RPL040).  RPL041 catches the related regression of building a
per-instance ``{kind: bound method}`` dict in ``__init__`` — the table
belongs at class level with ``getattr`` dispatch, or every instance
pays for it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "hot-path"

#: Modules (relative to the repro package) allocated on the per-event /
#: per-peer / per-key hot paths at 100k-peer scale.
HOT_MODULES = ("sim/events.py", "dht/node.py", "core/keys.py")

#: Class-name suffixes exempt from the slots rule — exception types are
#: raised, not held in bulk.
_EXEMPT_SUFFIXES = ("Error", "Exception", "Warning")


def check(project: Project) -> Iterator[Finding]:
    for source in project.files:
        if source.repro_rel in HOT_MODULES:
            yield from _check_slots(source)
        yield from _check_handler_dicts(source)


def _check_slots(source: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.endswith(_EXEMPT_SUFFIXES):
            continue
        if _has_slots(node):
            continue
        yield Finding(
            path=source.rel, line=node.lineno, col=node.col_offset,
            code="RPL040", symbol=node.name,
            message=(f"class {node.name} in hot module "
                     f"{source.repro_rel} has no __slots__ — instance "
                     f"dicts dominate memory at 100k-peer scale"))


def _has_slots(node: ast.ClassDef) -> bool:
    for child in node.body:
        if isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__slots__":
                    return True
        elif isinstance(child, ast.AnnAssign) \
                and isinstance(child.target, ast.Name) \
                and child.target.id == "__slots__":
            return True
    return False


def _check_handler_dicts(source: SourceFile) -> Iterator[Finding]:
    """``self.x = {...: self.method, ...}`` inside a method (RPL041)."""
    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            if not any(_is_self_attribute(t) for t in node.targets):
                continue
            values = node.value.values
            if len(values) >= 2 and all(_is_self_attribute(v)
                                        for v in values):
                target = next(t for t in node.targets
                              if _is_self_attribute(t))
                yield Finding(
                    path=source.rel, line=node.lineno,
                    col=node.col_offset, code="RPL041",
                    symbol=f"{func.name}:{target.attr}",
                    message=(f"per-instance bound-method dict "
                             f"self.{target.attr} built in "
                             f"{func.name}() — hoist the table to "
                             f"class level (name strings + getattr) so "
                             f"instances stay slim"))


def _is_self_attribute(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")

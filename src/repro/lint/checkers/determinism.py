"""RPL01x — determinism: no ambient state in sim-reachable modules.

The simulator's contract — byte-identical traces for one seed, pinned by
the kernel-equivalence and cross-backend tests — only holds if nothing
on a sim-reachable path reads a wall clock, the process environment or a
global/unseeded RNG.  Annotations like ``rng: random.Random`` and seeded
constructions like ``random.Random(0)`` are fine; the checker flags
*calls* that reach nondeterministic state, not mentions of the modules.

Scope: ``sim/``, ``core/``, ``dht/``, ``ir/``, ``net/`` and
``scenarios/`` inside the
repro package, with an explicit allowlist for the real-time edges that
*must* touch wall clocks and sockets (``net/udp.py``, ``cluster/``,
``util/process.py`` — the latter two fall outside the scope prefixes
anyway, but are listed for documentation value).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.checkers.common import ImportMap
from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

NAME = "determinism"

#: Module prefixes (relative to the repro package) the rules apply to.
SCOPE_PREFIXES = ("sim/", "core/", "dht/", "ir/", "net/", "scenarios/")

#: Carve-outs: real-time / process-boundary modules.
ALLOWLIST_PREFIXES = ("net/udp.py", "cluster/", "util/process.py")

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_GLOBAL_RNG_CALLS = frozenset(
    {f"random.{fn}" for fn in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
        "getrandbits", "randbytes")}
    | {"os.urandom", "uuid.uuid1", "uuid.uuid4",
       "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
       "secrets.randbelow", "secrets.randbits", "secrets.choice"})

_ENV_CALLS = frozenset({"os.getenv", "os.putenv", "os.environ.get"})


def in_scope(source: SourceFile) -> bool:
    rel = source.repro_rel
    if rel is None:
        return False
    if any(rel.startswith(prefix) for prefix in ALLOWLIST_PREFIXES):
        return False
    return any(rel.startswith(prefix) for prefix in SCOPE_PREFIXES)


def check(project: Project) -> Iterator[Finding]:
    for source in project.files:
        if in_scope(source):
            yield from _check_file(source)


def _check_file(source: SourceFile) -> Iterator[Finding]:
    imports = ImportMap(source.tree)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            yield from _check_call(source, imports, node)
        elif isinstance(node, ast.Attribute):
            # os.environ reads are attribute uses, not only calls
            # (subscripts, `in` tests, dict(os.environ) ...).
            name = imports.resolve_call(node)
            if name in ("os.environ", "os.environb"):
                yield _finding(source, node, "RPL012", name,
                               f"environment read ({name}) in a "
                               f"sim-reachable module")


def _check_call(source: SourceFile, imports: ImportMap,
                node: ast.Call) -> Iterator[Finding]:
    name = imports.resolve_call(node.func)
    if name is None:
        return
    if name in _WALL_CLOCK_CALLS:
        yield _finding(
            source, node, "RPL010", name,
            f"wall-clock read {name}() in a sim-reachable module "
            f"(virtual time comes from the sim clock)")
    elif name in _GLOBAL_RNG_CALLS:
        yield _finding(
            source, node, "RPL011", name,
            f"global RNG call {name}() (route randomness through a "
            f"seeded random.Random stream; see util/rng.py)")
    elif name == "random.Random" and not node.args \
            and not any(kw.arg in (None, "x") for kw in node.keywords):
        yield _finding(
            source, node, "RPL011", "random.Random()",
            "unseeded random.Random() (pass an explicit seed so runs "
            "reproduce)")
    elif name in _ENV_CALLS:
        yield _finding(
            source, node, "RPL012", name,
            f"environment read {name}() in a sim-reachable module")


def _finding(source: SourceFile, node: ast.AST, code: str, symbol: str,
             message: str) -> Finding:
    return Finding(path=source.rel, line=node.lineno,
                   col=node.col_offset, code=code, symbol=symbol,
                   message=message)

"""Digital-library scenario: heterogeneous peers and document digests.

The paper's motivating scenario (Sections 1 and 4): "a specialized
digital library might use sophisticated means for processing their local
documents and use the P2P IR infrastructure to make their content
searchable within the whole P2P network, possibly with specific access
rights."

This example shows:

* an **external search engine** exporting its proprietary index as an
  Alvis document digest (XML), which a peer imports and publishes;
* **access rights**: one collection is password-protected — its documents
  are *discoverable* through the global index but their content is only
  served with credentials;
* the **two-step retrieval**: a fast answer from the distributed index,
  refined by the local engines of the owning peers.

Run with::

    python examples/digital_library.py
"""

from __future__ import annotations

from repro import AccessPolicy, AlvisConfig, AlvisNetwork, Analyzer, Document
from repro.corpus import sample_documents
from repro.eval.reporting import print_table
from repro.ir.digest import digest_from_terms, parse_digest, render_digest


def build_library_digest() -> str:
    """The external library's export: its index, as Alvis digest XML.

    A real library would convert its own inverted index; here we analyze
    three catalogue entries with the standard pipeline.
    """
    analyzer = Analyzer()
    entries = [
        ("http://library.example/ms-101", "Medieval manuscript catalogue",
         "Illuminated medieval manuscripts from the abbey archive, with "
         "detailed provenance records and restoration notes."),
        ("http://library.example/ms-102", "Incunabula collection",
         "Early printed incunabula including annotated woodcut plates "
         "and bindings from the fifteenth century archive."),
        ("http://library.example/ms-103", "Restoration handbook",
         "Techniques for parchment restoration and archival storage of "
         "fragile manuscripts."),
    ]
    digests = [digest_from_terms(url, title, analyzer.analyze(text))
               for url, title, text in entries]
    return render_digest(digests)


def main() -> None:
    network = AlvisNetwork(num_peers=6, config=AlvisConfig(), seed=7)
    network.distribute_documents(sample_documents())

    # --- The digital library joins with its exported digest -------------
    library_peer = network.peer_ids()[0]
    xml_export = build_library_digest()
    print(f"library digest export: {len(xml_export)} bytes of XML")
    for digest in parse_digest(xml_export):
        document = Document(doc_id=0, title=digest.title,
                            text=" ".join(digest.term_sequence()),
                            url=digest.url)
        network.publish_documents(library_peer, [document])

    # --- A second peer shares a protected collection ---------------------
    private_peer = network.peer_ids()[1]
    confidential = Document(
        doc_id=0, title="Unpublished acquisitions list",
        text="confidential acquisitions budget for manuscript purchases")
    network.publish_documents(private_peer, [confidential],
                              policy=AccessPolicy.password("curator",
                                                           "vellum"))

    # --- Build the global index ------------------------------------------
    network.build_index(mode="hdk")

    # --- Search from an unrelated peer ------------------------------------
    searcher = network.peer_ids()[3]
    results, trace = network.query(searcher, "manuscript restoration",
                                   refine=True)
    rows = []
    for document in results:
        details = network.fetch_document(searcher, document.doc_id,
                                         terms=trace.query.terms)
        rows.append([document.doc_id, round(document.score, 3),
                     details.get("title") or details.get("error")])
    print_table("two-step results for 'manuscript restoration'",
                ["doc", "exact score", "title / access"], rows)

    # --- Access control in action -----------------------------------------
    protected_results, _trace = network.query(searcher,
                                              "confidential acquisitions")
    assert protected_results, "protected doc should be discoverable"
    doc_id = protected_results[0].doc_id
    denied = network.fetch_document(searcher, doc_id)
    granted = network.fetch_document(searcher, doc_id,
                                     credentials=("curator", "vellum"))
    print(f"\nprotected document {doc_id}: "
          f"anonymous fetch -> {denied['error']!r}; "
          f"with credentials -> {granted['title']!r}")


if __name__ == "__main__":
    main()

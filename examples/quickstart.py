"""Quickstart: build an AlvisP2P network, index documents, search.

Runs the full pipeline of the paper on the built-in sample collection:

1. create a simulated network of peers (transport + DHT + IR layers),
2. drop documents into peers' shared directories,
3. aggregate global statistics and build the HDK distributed index,
4. run multi-keyword queries from any peer and inspect the traffic,
5. turn on the batched + cached query engine (``batch_lookups``,
   ``cache_bytes``, ``topk_early_stop`` in :class:`repro.AlvisConfig`)
   and watch repeated queries stop costing traffic,
6. switch to the async query runtime (``async_queries``) and serve an
   *open workload* of concurrent queries (``AlvisNetwork.run_queries``)
   with clock-measured latency percentiles,
7. saturate the network (bounded per-endpoint service queues via
   ``service_rate``/``queue_capacity``) and let the AIMD congestion
   controller (``congestion_control``) keep goodput at the knee,
8. leave the simulator entirely: host the peers in real OS processes
   and run the same queries over asyncio/UDP sockets
   (:mod:`repro.cluster`), checking the top-k matches the simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AlvisConfig, AlvisNetwork
from repro.corpus import sample_documents
from repro.eval.reporting import print_table


def main() -> None:
    # 1. Eight peers; everything (corpus placement, DHT ids, latency) is
    #    seeded, so this script prints the same output every run.
    network = AlvisNetwork(num_peers=8, config=AlvisConfig(), seed=42)

    # 2. Spread the built-in 12-document sample collection round-robin:
    #    each peer owns its documents, exactly like a shared directory.
    network.distribute_documents(sample_documents())
    print(f"network: {network}")

    # 3. Build the global index with Highly Discriminative Keys.  This
    #    runs the statistics phase (global dfs, collection totals) and
    #    the round-based HDK construction, all through the DHT.
    stats = network.build_index(mode="hdk")
    print(f"index built: {stats.keys_published} key publications in "
          f"{stats.rounds} rounds, keys by size {stats.keys_by_size}")

    # 4. Query from the first peer.  The querying peer explores the
    #    lattice of term combinations (Figure 1 of the paper), unions
    #    the retrieved posting lists and ranks with BM25.
    origin = network.peer_ids()[0]
    for query in ("scalable peer retrieval",
                  "posting list truncation",
                  "congestion control"):
        results, trace = network.query(origin, query)
        print(f"\nquery: {query!r}")
        print(f"  lattice: probed {trace.probed_count}, "
              f"skipped {trace.skipped_count}; "
              f"{trace.bytes_sent} bytes, {trace.lookup_hops} hops")
        rows = []
        for document in results[:3]:
            details = network.fetch_document(origin, document.doc_id,
                                             terms=trace.query.terms)
            rows.append([document.doc_id, round(document.score, 3),
                         details.get("title", "?"),
                         details.get("url", "?")])
        print_table("top results", ["doc", "score", "title", "url"],
                    rows)

    # 5. The batched + cached query engine.  ``batch_lookups`` routes
    #    each lattice frontier's DHT lookups in one shared round and
    #    same-owner probes in one message; ``cache_bytes`` gives every
    #    peer an LRU probe cache (invalidated on churn/republication);
    #    ``topk_early_stop`` prunes lattice nodes whose score ceiling
    #    cannot change the top-k.  Results are identical — only the
    #    traffic shrinks.
    engine = AlvisNetwork(
        num_peers=8, seed=42,
        config=AlvisConfig(batch_lookups=True, cache_bytes=64 * 1024,
                           topk_early_stop=True))
    engine.distribute_documents(sample_documents())
    engine.build_index(mode="hdk")
    origin = engine.peer_ids()[0]
    print("\nwith the batched + cached query engine:")
    for attempt in ("cold", "warm"):
        _results, trace = engine.query(origin, "scalable peer retrieval")
        print(f"  {attempt} query: {trace.request_messages} requests, "
              f"{trace.lookup_hops} hop messages, {trace.bytes_sent} "
              f"bytes, cache {trace.cache_hits} hits / "
              f"{trace.cache_misses} misses")

    # 6. The async query runtime.  With ``async_queries`` every query is
    #    a process on the discrete-event kernel: its lookups and probes
    #    travel as correlated async requests, so *concurrent* queries
    #    genuinely interleave in virtual time and each trace carries a
    #    clock-measured ``latency`` (the sync path keeps the modelled
    #    ``rtt_estimate``).  ``dispatch_window`` coalesces lookups and
    #    probes across concurrent queries from one origin (server-side
    #    cross-query batching); ``pipeline_levels`` launches level N+1's
    #    DHT lookups while level N's probe replies are still in flight.
    #    ``run_queries`` drives a Poisson-arrival open workload — the
    #    "many simultaneous querying peers" scenario of the paper's
    #    scalability argument.
    runtime = AlvisNetwork(
        num_peers=8, seed=42,
        config=AlvisConfig(batch_lookups=True, async_queries=True,
                           dispatch_window=0.05, pipeline_levels=True))
    runtime.distribute_documents(sample_documents())
    runtime.build_index(mode="hdk")
    workload = ["scalable peer retrieval", "posting list truncation",
                "congestion control"] * 4
    jobs = runtime.run_queries(workload, arrival_rate=100.0)
    summary = runtime.runtime.latency_summary()
    print("\nwith the async query runtime (open workload):")
    print(f"  {len(jobs)} concurrent queries "
          f"(peak {runtime.runtime.peak_active} in flight), latency "
          f"p50 {summary['p50']:.3f}s / p95 {summary['p95']:.3f}s, "
          f"{runtime.runtime.coalesced_probe_keys()} probe keys "
          f"coalesced across queries")

    # 7. Congestion control at the saturation knee.  ``service_rate``/
    #    ``queue_capacity`` give every endpoint a *bounded* service
    #    queue (hot owners exhibit real queueing delay, and overflow
    #    means drops); ``congestion_control`` puts the NCA'06 AIMD
    #    window between each origin's dispatch queue and the transport,
    #    so heavy workloads back off, merge their backlogged batches
    #    and retransmit drops — instead of flooding.  Sweep the arrival
    #    rate through the knee with bench_e15_congestion_runtime.py;
    #    here we just overload one origin and read the counters.
    print("\nwith bounded service queues and AIMD congestion control:")
    for label, controlled in (("uncontrolled", False), ("AIMD", True)):
        congested = AlvisNetwork(
            num_peers=8, seed=42,
            config=AlvisConfig(batch_lookups=True, async_queries=True,
                               service_rate=25.0, queue_capacity=2,
                               congestion_control=controlled))
        congested.distribute_documents(sample_documents())
        congested.build_index(mode="hdk")
        origin = congested.peer_ids()[0]
        started = congested.simulator.now
        jobs = congested.run_queries(workload, origins=[origin],
                                     arrival_rate=300.0)
        makespan = congested.simulator.now - started
        drops = congested.transport.queue_drops_total()
        summary = congested.runtime.latency_summary()
        window = congested.runtime.congestion_summary()
        print(f"  {label:>12}: {len(jobs) / makespan:5.1f} queries/s "
              f"goodput, p95 {summary['p95']:.3f}s, {drops} queue "
              f"drops, {congested.runtime.retransmissions()} "
              f"retransmissions"
              + (f", cwnd mean {window['window_mean']:.1f}"
                 if controlled else ""))

    # 8. Running a real UDP cluster.  Everything above executed inside
    #    the discrete-event simulator — the default backend.  The same
    #    engine also runs over real asyncio/UDP sockets between OS
    #    processes: the backend selection knob is
    #    ``AlvisNetwork.attach_transport`` (swap the simulated
    #    ``SimTransport`` for a ``repro.net.udp.UdpTransport``), and
    #    ``repro.cluster.ClusterDriver`` packages the whole recipe —
    #    every process builds the identical seeded network, registers
    #    only the peer slice it owns, and the driver routes the rest to
    #    its sibling processes after a fingerprint-checked handshake.
    #    From a shell the equivalent is::
    #
    #        python -m repro --peers 8 cluster --hosts 2 --queries 3
    #
    #    bench_e16_udp_cluster.py replays an E14-style Zipf workload
    #    this way and writes BENCH_udp_cluster.json: its bytes/query
    #    equals the simulator's (the wire codec is size-exact against
    #    the byte model), while its latency percentiles are *measured*
    #    wall-clock round trips — numbers the simulator can only model.
    from repro.cluster import ClusterDriver, ClusterSpec

    print("\nreal multi-process UDP cluster (same engine, real sockets):")
    spec = ClusterSpec(num_peers=8, num_hosts=2, seed=42, mode="hdk")
    with ClusterDriver(spec) as driver:
        origin = sorted(driver.network.peer_ids())[0]
        for terms in (["peer", "retrieval"], ["index"]):
            udp_results, _trace = driver.run_query(origin, terms)
            sim_results, _trace = network.query(
                network.peer_ids()[0], terms)
            match = ([d.doc_id for d in udp_results]
                     == [d.doc_id for d in sim_results])
            print(f"  {' '.join(terms):>16}: {len(udp_results)} results "
                  f"over UDP, top-k matches simulator: {match}")
        print(f"  {driver.transport.datagrams_sent} datagrams sent, "
              f"{driver.transport.wire_bytes_sent} wire bytes, "
              f"{spec.num_hosts} OS processes")

    # 9. Scaling out.  The kernel is sized for 100k-peer networks: slot
    #    packed events with a batched heap, interned key objects,
    #    numpy-vectorized owner-side BM25 (bitwise-identical to the
    #    scalar path; REPRO_PURE_PYTHON=1 forces the fallback) and
    #    churn-local routing-table maintenance.  A network pins the
    #    unoptimised kernel with ``kernel_profile="legacy"`` — results
    #    are trace-identical, only the wall-clock differs.  The sweep
    #    driver measures both::
    #
    #        PYTHONPATH=src python -m repro.eval.scale \
    #            --peers 10000 --queries 36 --churn 90 --json -
    #
    #    benchmarks/bench_scale.py runs the full 1k -> 10k -> 100k
    #    sweep (BENCH_FULL=1) and writes BENCH_scale.json; read it by
    #    leg: ``events_per_sec`` is effective kernel throughput over
    #    the churning workload phase (the fast/legacy comparison's
    #    ``speedup`` gates >= 5x at 10k peers), ``bytes_per_query`` the
    #    network cost, ``peak_rss_kb`` the per-leg process footprint,
    #    and ``top_k_sha1`` fingerprints result equality across
    #    profiles.  Here, a quick in-process taste at demo scale:
    from repro.eval.monitor import NetworkMonitor
    from repro.eval.scale import run_leg

    print("\nscale leg (800 peers, in-process demo size):")
    leg = run_leg(peers=800, documents=60, queries=6, churn_events=10,
                  kernel_profile="fast", seed=42)
    print(f"  {leg['events_processed']} events at "
          f"{leg['events_per_sec']:,.0f} events/s effective, "
          f"{leg['bytes_per_query']:,.0f} bytes/query, "
          f"peak RSS {leg['peak_rss_kb'] / 1024:,.0f} MB")
    monitor = NetworkMonitor(congested)
    snapshot = monitor.snapshot()
    print(f"  monitor: {snapshot.events_processed:,} events "
          f"({snapshot.events_per_sec:,.0f}/s) on the §7 network, "
          f"peak RSS {snapshot.peak_rss_kb:,} KB")

    # 10. Static analysis.  The invariants the sections above rely on —
    #     byte-identical runs per seed (§1), a wire schema the UDP
    #     cluster can decode (§8), slim hot-path objects (§9), feature
    #     knobs that default off (§5-§7) — are enforced at review time
    #     by the repo's own AST checkers::
    #
    #         PYTHONPATH=src python -m repro lint                # whole repo
    #         PYTHONPATH=src python -m repro lint --list-codes   # rule table
    #
    #     Exit status 0 means the scan matches lint_baseline.json
    #     exactly (this repo's baseline is empty: zero grandfathered
    #     findings).  Here, the determinism checker catching a
    #     wall-clock read that would break seed-reproducibility:
    import tempfile
    from pathlib import Path

    from repro.lint import format_findings, run_lint

    leaky = (
        "import time\n"
        "\n"
        "def jitter():\n"
        "    return time.time() % 1.0\n")
    with tempfile.TemporaryDirectory() as scratch:
        module = Path(scratch) / "src" / "repro" / "sim" / "leaky.py"
        module.parent.mkdir(parents=True)
        module.write_text(leaky, encoding="utf-8")
        findings = run_lint([module], project_root=Path(scratch))
    print("\nrepro lint on a leaky module:")
    print("  " + format_findings(findings).replace("\n", "\n  "))

    # 11. Adversarial scenarios.  The atlas scripts whole timelines —
    #     churn storms, flash crowds, partitions, graceful drains, slow
    #     minorities — as declarative specs with pass criteria, run
    #     deterministically on the event kernel::
    #
    #         PYTHONPATH=src python -m repro scenario list
    #         PYTHONPATH=src python -m repro scenario run churn_storm \
    #             --seed 0 --json -
    #
    #     Exit status 0 means every declared criterion held; the
    #     ScenarioReport carries recall@k against a fault-free oracle,
    #     latency percentiles, goodput and handover bytes.  The same
    #     surface is a library:
    from repro.scenarios import ScenarioRunner, get_scenario

    print("\nscenario atlas (churn_storm at demo size):")
    storm = get_scenario("churn_storm").scaled(num_peers=12, queries=12)
    report = ScenarioRunner(storm, seed=0).run()
    print(f"  {report.scenario}: "
          f"{'PASS' if report.passed else 'FAIL'} — "
          f"recall@{report.k} {report.recall_at_k:.3f}, "
          f"p99 {report.latency_p99:.3f}s, "
          f"{report.queries_completed}/{report.queries_submitted} "
          f"queries through {report.crashes} crashes and "
          f"{report.joins} joins")
    for criterion in report.criteria:
        print(f"    {criterion}")

    # 12. The packed indexing phase.  Indexing is the other scalability
    #     axis: before a single query runs, every peer resolves DHT
    #     owners for each term and HDK key it publishes, and ships its
    #     statistics and posting lists there.  Two knobs make that
    #     phase scale like the query phase: ``packed_postings`` keeps
    #     posting lists in the flat wire layout (the exact bytes the
    #     §8 codec writes — ``wire_size()`` is unchanged, so traffic
    #     accounting stays byte-identical), and ``batch_index_lookups``
    #     resolves each publication batch's keys in one shared frontier
    #     walk with an epoch-scoped routing cache, so owner resolution
    #     stops re-routing keys the network already located.  The built
    #     index is identical either way — bench_scale.py gates the
    #     10k-peer indexing phase at >= 3x over the legacy kernel with
    #     an equal state fingerprint (``index_speedup`` in
    #     BENCH_scale.json); tests/test_index_equivalence.py pins the
    #     per-knob equivalence contracts at seed size.
    from repro.core.fingerprint import state_fingerprint

    plain = AlvisNetwork(num_peers=8, seed=42, config=AlvisConfig())
    packed = AlvisNetwork(
        num_peers=8, seed=42,
        config=AlvisConfig(packed_postings=True,
                           batch_index_lookups=True))
    for candidate in (plain, packed):
        candidate.distribute_documents(sample_documents())
        candidate.build_index(mode="hdk")
    print("\npacked + batched indexing phase:")
    print(f"  identical index: "
          f"{state_fingerprint(packed) == state_fingerprint(plain)}")
    print(f"  lookup traffic: "
          f"{packed.bytes_by_kind().get('LookupHop', 0.0):,.0f} bytes "
          f"batched vs {plain.bytes_by_kind().get('LookupHop', 0.0):,.0f} "
          f"serial")


if __name__ == "__main__":
    main()

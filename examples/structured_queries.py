"""Structured queries at a sophisticated local engine (Layer 5).

Section 3: a local search engine "can support complex structured queries
or/and employ a particular ranking strategy".  This example runs boolean
AND/OR/NOT queries and positional phrase queries against one peer's
engine, then shows the two-step flow: a remote user finds a document via
the distributed index and the *owning* peer's engine answers a refined,
structured follow-up.

Run with::

    python examples/structured_queries.py
"""

from __future__ import annotations

from repro import AlvisNetwork
from repro.corpus import sample_documents
from repro.eval.reporting import print_table


def local_engine_showcase(engine) -> None:
    queries = [
        'retrieval AND "distributed index"',
        '"posting list" OR ranking',
        'peer AND NOT congestion',
        '(truncation OR ranking) AND NOT bm25',
        '"access rights"',
    ]
    for query in queries:
        results = engine.structured_search(query, k=3)
        rows = [[result.doc_id, result.title,
                 round(result.score, 3)] for result in results]
        print_table(f"structured query: {query}",
                    ["doc", "title", "score"], rows)


def main() -> None:
    network = AlvisNetwork(num_peers=5, seed=17)
    # The "digital library" peer holds the whole sample collection (a
    # library brings a complete local corpus); other peers join empty.
    library_id = network.peer_ids()[0]
    network.publish_documents(library_id, sample_documents())
    network.build_index(mode="hdk")

    # --- Local structured search at the library peer ----------------------
    library_peer = network.peer(library_id)
    print(f"local engine of peer {library_id} "
          f"({library_peer.engine.num_documents} documents)")
    local_engine_showcase(library_peer.engine)

    # --- Two-step flow: distributed discovery, structured follow-up ------
    searcher = network.peer_ids()[-1]
    results, trace = network.query(searcher, "ranking statistics")
    assert results
    top = results[0]
    owner = network.doc_owner(top.doc_id)
    print(f"\ndistributed query found doc {top.doc_id} at its holder; "
          f"forwarding a structured follow-up to that local engine:")
    owner_engine = network.peer(owner).engine
    refined = owner_engine.structured_search(
        'statistics AND indexing AND NOT congestion', k=3)
    rows = [[result.doc_id, result.title, result.snippet[:48]]
            for result in refined]
    print_table("owner-side structured refinement",
                ["doc", "title", "snippet"], rows)


if __name__ == "__main__":
    main()

"""The AlvisP2P peer client, as a scripted console session.

Recreates the demo GUI's workflows (Figures 4-6 of the paper) through the
public API: joining a running network, the "Search" tab (results with
hosting-peer URL, title, snippet and relevance score), the "Manager of
shared documents" tab (publish / drag & drop / access rights), and
external-document integration.

Run with::

    python examples/peer_client.py
"""

from __future__ import annotations

from repro import AccessPolicy, AlvisNetwork, Document
from repro.corpus import sample_documents
from repro.eval.reporting import print_table


def banner(title: str) -> None:
    print(f"\n{'=' * 64}\n  {title}\n{'=' * 64}")


def search_tab(network, origin, query: str) -> None:
    """The 'Search' tab: query the network, browse the results."""
    banner(f"Search: {query!r}")
    results, trace = network.query(origin, query, refine=True)
    rows = []
    for document in results[:5]:
        details = network.fetch_document(origin, document.doc_id,
                                         terms=trace.query.terms)
        if details["ok"]:
            rows.append([f"{details['url']}", details["title"],
                         details["snippet"][:44] + "…",
                         round(document.score, 3)])
        else:
            rows.append([f"doc {document.doc_id}",
                         f"<{details['error']}>", "",
                         round(document.score, 3)])
    print_table("results", ["hosting peer URL", "title", "snippet",
                            "score"], rows)
    print(f"({trace.probed_count} keys probed, {trace.bytes_sent} bytes "
          f"on the wire, {trace.lookup_hops} routing hops)")


def shared_documents_tab(network, peer_id) -> None:
    """The 'Manager of shared documents' tab."""
    banner("Manager of shared documents")
    peer = network.peer(peer_id)
    rows = []
    for document in peer.engine.store:
        policy = peer.access.policy(document.doc_id)
        rows.append([document.doc_id, document.title,
                     "password" if policy.protected else "free",
                     document.url])
    print_table(f"shared directory of peer {peer_id}",
                ["doc", "title", "access", "url"], rows)


def main() -> None:
    # A running AlvisP2P network we are about to join.
    network = AlvisNetwork(num_peers=6, seed=11)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")

    # --- Join: "downloading and installing the peer client" -------------
    banner("Joining the AlvisP2P network")
    churn = network.churn()
    my_peer = churn.join()
    print(f"joined as peer {my_peer}; network now has "
          f"{network.num_peers} peers")

    # --- Drag & drop documents into the shared directory ----------------
    my_documents = [
        Document(doc_id=0, title="Trip report",
                 text="notes from the vldb auckland demonstration of "
                      "peer to peer retrieval prototypes"),
        Document(doc_id=0, title="Reading list",
                 text="papers on distributed hash tables and query "
                      "driven indexing to read next"),
    ]
    for document in my_documents:
        network.publish_incremental(my_peer, document)
    secret = Document(doc_id=0, title="Draft paper",
                      text="unsubmitted draft on adaptive posting list "
                           "truncation strategies")
    secret_id = network.publish_incremental(my_peer, secret)
    network.peer(my_peer).access.set_policy(
        secret_id, AccessPolicy.password("me", "s3cret"))
    shared_documents_tab(network, my_peer)

    # --- Search the network ----------------------------------------------
    search_tab(network, my_peer, "peer retrieval prototype")
    search_tab(network, my_peer, "distributed ranking statistics")

    # --- Another user finds the protected draft ---------------------------
    other = network.peer_ids()[0]
    results, _ = network.query(other, "truncation strategies draft")
    banner("Access rights")
    for document in results[:1]:
        denied = network.fetch_document(other, document.doc_id)
        granted = network.fetch_document(other, document.doc_id,
                                         credentials=("me", "s3cret"))
        print(f"anonymous fetch of doc {document.doc_id}: "
              f"{denied.get('error', 'ok')!r}")
        print(f"authorized fetch: {granted['title']!r}")


if __name__ == "__main__":
    main()

"""Overlay robustness: churn with index handover, and congestion control.

Exercises the two Layer-2 mechanisms the paper highlights (Section 3):

* **Churn** — peers join and leave while the global index stays
  consistent: key ranges are handed over (byte-accounted), and queries
  keep returning the same results.
* **Congestion control** — the NCA'06-style AIMD controller vs. an
  open-loop sender against a bounded-capacity node: the open loop
  collapses into retransmission churn past saturation, AIMD does not.

Run with::

    python examples/churn_and_congestion.py
"""

from __future__ import annotations

from repro import AlvisNetwork
from repro.corpus import sample_documents
from repro.dht.congestion import (
    AimdSender,
    CongestionConfig,
    QueueingNode,
    UncontrolledSender,
)
from repro.eval.reporting import print_table
from repro.sim.events import Simulator


def churn_demo() -> None:
    network = AlvisNetwork(num_peers=8, seed=3)
    network.distribute_documents(sample_documents())
    network.build_index(mode="hdk")
    origin = network.peer_ids()[0]
    baseline_results, _ = network.query(origin, "query lattice")
    baseline_ids = [doc.doc_id for doc in baseline_results]

    churn = network.churn()
    rows = []
    for step in range(6):
        network.reset_traffic()
        if step % 2 == 0:
            action = "join"
            churn.join()
        else:
            # A departing peer takes its documents with it (they "always
            # remain at the peer that holds them"); its index range is
            # handed to the successor.
            action = "leave"
            churn.leave()
        handover = network.bytes_by_kind().get("IndexHandover", 0.0)
        origin = network.peer_ids()[0]  # query from any live peer
        results, _ = network.query(origin, "query lattice")
        live_ids = [doc.doc_id for doc in results]
        surviving = [doc_id for doc_id in baseline_ids
                     if network.doc_owner(doc_id) is not None]
        stable = all(doc_id in live_ids for doc_id in surviving)
        rows.append([step + 1, action, network.num_peers,
                     network.total_keys(), handover, len(results),
                     "yes" if stable else "NO"])
    print_table(
        "churn session: index handover and query stability",
        ["step", "event", "peers", "keys", "handover bytes", "results",
         "surviving docs found"], rows)


def congestion_demo() -> None:
    service_rate = 100.0
    duration = 4.0
    rows = []
    for factor in (0.5, 1.0, 2.0, 5.0, 10.0):
        # Open loop: fixed offered rate, blind retransmissions.
        sim_u = Simulator()
        config = CongestionConfig(service_rate=service_rate,
                                  queue_capacity=10,
                                  network_delay=0.01,
                                  retransmit_timeout=0.3)
        node_u = QueueingNode(sim_u, config)
        open_loop = UncontrolledSender(sim_u, node_u, config,
                                       offered_rate=service_rate * factor)
        open_loop.start(duration)
        sim_u.run_until(duration)
        # AIMD: window-controlled, same capacity, same amount of work.
        sim_c = Simulator()
        node_c = QueueingNode(sim_c, config)
        aimd = AimdSender(sim_c, node_c, config,
                          workload=int(service_rate * factor * duration))
        aimd.start()
        sim_c.run_until(duration)
        rows.append([factor,
                     open_loop.acked / duration,
                     node_u.dropped,
                     aimd.acked / duration,
                     node_c.dropped])
    print_table(
        f"congestion: goodput vs offered load (capacity "
        f"{service_rate:.0f}/s)",
        ["offered/capacity", "open-loop goodput", "open-loop drops",
         "AIMD goodput", "AIMD drops"], rows)


def main() -> None:
    churn_demo()
    print()
    congestion_demo()


if __name__ == "__main__":
    main()

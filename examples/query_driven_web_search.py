"""Query-Driven Indexing over a skewed, drifting query stream.

Reproduces the live behaviour the demo showed when switching to QDI
(Section 5): the index starts with single terms only; popular multi-term
combinations get indexed on demand as users query; when interest drifts,
obsolete keys are evicted and the index follows.

The script prints, per window of the stream, the hit rate of the full
query combination, the average lattice probes per query (retrieval cost),
and the number of on-demand keys currently in the global index.

Run with::

    python examples/query_driven_web_search.py
"""

from __future__ import annotations

from repro import AlvisConfig, AlvisNetwork
from repro.corpus import (
    QueryWorkload,
    QueryWorkloadConfig,
    SyntheticCorpus,
    SyntheticCorpusConfig,
)
from repro.core.lattice import ProbeStatus
from repro.eval.reporting import print_table
from repro.util.rng import make_rng

WINDOW = 40


def run_stream(network, workload, num_queries, drift, rng):
    """Drive ``num_queries`` through the network; return window rows."""
    rows = []
    hits = probes = 0
    origins = network.peer_ids()
    for index in range(num_queries):
        query = workload.sample(rng, drift=drift)
        _results, trace = network.query(origins[index % len(origins)],
                                        list(query))
        statuses = dict(trace.probes)
        if statuses.get(trace.query) in (ProbeStatus.UNTRUNCATED,
                                         ProbeStatus.TRUNCATED):
            hits += 1
        probes += trace.probed_count
        if (index + 1) % WINDOW == 0:
            on_demand = sum(1 for peer in network.peers()
                            for entry in peer.fragment
                            if entry.on_demand and entry.postings)
            rows.append([index + 1, hits / WINDOW, probes / WINDOW,
                         on_demand])
            hits = probes = 0
    return rows


def main() -> None:
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=200, vocabulary_size=1000, num_topics=8, seed=5))
    workload = QueryWorkload.from_corpus(
        corpus, QueryWorkloadConfig(pool_size=50, seed=6))

    config = AlvisConfig(qdi_activation_threshold=2,
                         qdi_maintenance_interval=40,
                         qdi_decay=0.5,
                         qdi_eviction_threshold=0.25)
    network = AlvisNetwork(num_peers=10, config=config, seed=8)
    network.distribute_documents(corpus.documents())
    network.build_index(mode="qdi")
    print(f"{network} — single-term base index, QDI managers active")

    rng = make_rng(9, "stream")
    warmup = run_stream(network, workload, 160, drift=0, rng=rng)
    print_table("warm-up: stationary Zipf query stream",
                ["queries", "full-key hit rate", "probes/query",
                 "on-demand keys"], warmup)

    drifted = run_stream(network, workload, 160, drift=15, rng=rng)
    print_table("after interest drift (popularity ranks shifted by 15)",
                ["queries", "full-key hit rate", "probes/query",
                 "on-demand keys"], drifted)

    activations = sum(peer.qdi.stats.activations
                      for peer in network.peers())
    evictions = sum(peer.qdi.stats.evictions for peer in network.peers())
    suppressed = sum(peer.qdi.stats.redundant_suppressed
                     for peer in network.peers())
    print(f"\nQDI totals: {activations} on-demand activations, "
          f"{evictions} evictions, "
          f"{suppressed} redundant combinations suppressed")


if __name__ == "__main__":
    main()

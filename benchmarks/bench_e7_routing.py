"""E7 — DHT routing: O(log n) tables and hops under arbitrary skew.

"Peers build routing tables of size O(log n), which results in an
expected routing cost of O(log n) hops... the DHT supports arbitrary
skews in the distribution of the peers in the identifier space"
(Section 3, citing Klemm et al., P2P 2007).

Series reproduced: mean/p99 lookup hops and routing-table size vs.
network size, for uniform and heavily clustered peer placement, comparing
naive id-space fingers with hop-space fingers.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.dht.idspace import random_id
from repro.dht.ring import DHTRing
from repro.dht.routing import (
    HopSpaceFingers,
    NaiveFingers,
    skewed_ids,
    uniform_ids,
)
from repro.eval.reporting import print_table
from repro.util.stats import percentile

_SIZES = (64, 256, 1024)
_LOOKUPS = 300


def _measure(ids, strategy, seed=0, peer_targets=False):
    ring = DHTRing(strategy)
    for node_id in ids:
        ring.add_node(node_id)
    ring.rebuild_tables()
    rng = random.Random(seed)
    hops = []
    for _ in range(_LOOKUPS):
        source = rng.choice(ids)
        target = rng.choice(ids) if peer_targets else random_id(rng)
        hops.append(ring.lookup(source, target).hops)
    return {
        "mean": sum(hops) / len(hops),
        "p99": percentile(hops, 99),
        "max": max(hops),
        "table": ring.mean_routing_table_size(),
    }


@pytest.fixture(scope="module")
def e7_rows():
    rows = []
    for n in _SIZES:
        for placement, generator, peer_targets in (
                ("uniform", uniform_ids, False),
                ("skewed", lambda rng, count: skewed_ids(
                    rng, count, cluster_fraction=0.95,
                    cluster_width=1e-9), True)):
            ids = generator(random.Random(42), n)
            for name, strategy in (("naive", NaiveFingers()),
                                   ("hop-space", HopSpaceFingers())):
                stats = _measure(ids, strategy,
                                 peer_targets=peer_targets)
                rows.append([n, placement, name, stats["mean"],
                             stats["p99"], stats["max"],
                             stats["table"]])
    return rows


def test_e7_routing_hops(benchmark, capsys, e7_rows):
    ids = uniform_ids(random.Random(1), 256)
    ring = DHTRing(HopSpaceFingers())
    for node_id in ids:
        ring.add_node(node_id)
    ring.rebuild_tables()
    rng = random.Random(2)
    benchmark(lambda: ring.lookup(rng.choice(ids), random_id(rng)))
    with capsys.disabled():
        print_table(
            "E7 lookup hops and table size vs n",
            ["n", "placement", "fingers", "mean hops", "p99", "max",
             "table size"],
            e7_rows)


def test_e7_shape_holds(e7_rows):
    by_key = {(row[0], row[1], row[2]): row for row in e7_rows}
    for n in _SIZES:
        log_n = math.log2(n)
        # Hop-space: ~log2(n) mean hops and table size, both placements.
        for placement in ("uniform", "skewed"):
            row = by_key[(n, placement, "hop-space")]
            assert row[3] <= log_n + 1           # mean hops
            assert row[6] <= log_n + 5           # table size
        # Under skew, hop-space must beat naive on worst-case hops and
        # keep smaller tables.
        naive = by_key[(n, "skewed", "naive")]
        hopspace = by_key[(n, "skewed", "hop-space")]
        assert hopspace[5] <= naive[5]           # max hops
        assert hopspace[6] <= naive[6] + 1       # table size
    # Hops grow logarithmically: quadrupling n adds ~2 hops, not 4x.
    small = by_key[(_SIZES[0], "uniform", "hop-space")][3]
    large = by_key[(_SIZES[-1], "uniform", "hop-space")][3]
    assert large - small < 2 * math.log2(_SIZES[-1] / _SIZES[0])

"""E6 — storage and message load balance across peers.

Section 1 demands "load balancing"; Section 2 notes the truncated-list
pruning approximation "improve[s] load balancing with an only marginal
loss in retrieval precision".

Series reproduced: per-peer index storage distribution (Gini, max/mean)
and per-peer retrieval message load over a query batch, with the pruning
approximation on vs. off.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_network
from repro.core.config import AlvisConfig
from repro.eval.loadbalance import load_balance_report
from repro.eval.reporting import print_table


def _run_load(network, workload, queries=60):
    network.transport.reset_load_counters()
    origins = network.peer_ids()
    for index, query in enumerate(workload.pool[:queries]):
        network.query(origins[index % len(origins)], list(query))
    return network.per_peer_messages_in()


@pytest.fixture(scope="module")
def e6_data(bench_corpus, bench_workload):
    data = {}
    for prune in (True, False):
        config = AlvisConfig(prune_on_truncated=prune)
        network = make_network(bench_corpus, config=config)
        storage = load_balance_report(
            list(network.per_peer_index_storage().values()))
        messages = load_balance_report(
            list(_run_load(network, bench_workload).values()))
        data[prune] = (storage, messages)
    return data


def test_e6_load_balance(benchmark, capsys, e6_data, bench_hdk_network):
    benchmark(lambda: load_balance_report(
        list(bench_hdk_network.per_peer_index_storage().values())))
    rows = []
    for prune, (storage, messages) in e6_data.items():
        rows.append([f"prune={prune}", "storage bytes",
                     storage["mean"], storage["gini"],
                     storage["max_over_mean"]])
        rows.append([f"prune={prune}", "retrieval msgs",
                     messages["mean"], messages["gini"],
                     messages["max_over_mean"]])
    with capsys.disabled():
        print_table(
            "E6 per-peer load distribution (16 peers, 60 queries)",
            ["variant", "load", "mean", "gini", "max/mean"],
            rows)


@pytest.fixture(scope="module")
def e6_virtual_rows(bench_corpus):
    rows = []
    for virtual in (1, 4, 8):
        network = make_network(bench_corpus, virtual_nodes=virtual)
        report = load_balance_report(
            list(network.per_peer_index_storage().values()))
        rows.append([virtual, report["gini"],
                     report["max_over_mean"]])
    return rows


def test_e6_virtual_nodes(benchmark, capsys, e6_virtual_rows,
                          bench_hdk_network):
    benchmark(lambda: bench_hdk_network.per_peer_index_storage())
    with capsys.disabled():
        print_table(
            "E6b storage balance vs virtual nodes per peer",
            ["virtual nodes", "storage gini", "max/mean"],
            e6_virtual_rows)


def test_e6_virtual_shape_holds(e6_virtual_rows):
    # More ring positions per peer -> monotonically better (or equal)
    # storage balance.
    ginis = [row[1] for row in e6_virtual_rows]
    assert ginis[-1] < ginis[0]


def test_e6_shape_holds(e6_data):
    for _prune, (storage, messages) in e6_data.items():
        # No pathological hot spot: bounded inequality.
        assert storage["gini"] < 0.8
        assert messages["gini"] < 0.8
    # Pruning must not *worsen* message balance beyond noise.
    pruned_msgs = e6_data[True][1]["gini"]
    unpruned_msgs = e6_data[False][1]["gini"]
    assert pruned_msgs <= unpruned_msgs + 0.1

"""E14 (extension) — the async query runtime under an open workload.

The previous experiments measure *per-query byte counts* with queries
executed one at a time; the scalability claim the related top-k work
(Akbarinia et al.) and the P2P-management surveys actually test is
*latency percentiles under concurrent load*.  This experiment runs a
Poisson-arrival open workload of Zipf-skewed queries through three
execution models over the same corpus and index:

* ``sequential``   — the synchronous frontier-batched engine; queries
  never overlap, latency is the modelled ``rtt_estimate``;
* ``async``        — the event-kernel runtime, queries overlap, every
  probe/lookup is an async request; latency measured from the virtual
  clock;
* ``async_batched`` — the runtime plus cross-query dispatch batching
  (``dispatch_window``) and level pipelining (``pipeline_levels``).

Acceptance targets tracked by ``BENCH_async_runtime.json``:

* every query of the open workload completes, with p95 latency and
  messages-per-query reported;
* cross-query dispatch batching reduces per-query network messages
  versus independent async queries;
* identical top-k results across all three execution models.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import (BENCH_SEED, make_network,
                                 write_bench_artifact)
from repro.core.config import AlvisConfig
from repro.eval.reporting import print_table
from repro.util.rng import make_rng
from repro.util.stats import percentile
from repro.util.zipf import ZipfSampler

#: Arrival rate (queries per virtual second) of the open workload —
#: high enough that tens of queries overlap.
ARRIVAL_RATE = 150.0

VARIANTS = {
    "sequential": dict(batch_lookups=True),
    "async": dict(batch_lookups=True, async_queries=True),
    "async_batched": dict(batch_lookups=True, async_queries=True,
                          dispatch_window=0.05, pipeline_levels=True),
}


@pytest.fixture(scope="module")
def e14_workload(bench_workload, bench_smoke):
    """A Zipf-skewed open query stream (duplicates arrive concurrently)."""
    draws = 60 if bench_smoke else 300
    sampler = ZipfSampler(len(bench_workload.pool), exponent=1.1)
    rng = make_rng(BENCH_SEED, "e14-zipf")
    return [bench_workload.pool[rank]
            for rank in sampler.sample_many(rng, draws)]


@pytest.fixture(scope="module")
def e14_runs(bench_corpus, e14_workload):
    """Run the identical workload through all three execution models."""
    runs = {}
    for label, overrides in VARIANTS.items():
        network = make_network(bench_corpus,
                               config=AlvisConfig(**overrides))
        # A handful of querying front-ends, round-robin: cross-query
        # batching coalesces per origin, so concentrating the workload
        # on a few origins is the server-side-batching scenario.
        origins = network.peer_ids()[:4]
        messages_before = network.messages_sent_total()
        bytes_before = network.bytes_sent_total()
        clock_before = network.simulator.now
        started = time.perf_counter()
        if overrides.get("async_queries"):
            jobs = network.run_queries(e14_workload, origins=origins,
                                       arrival_rate=ARRIVAL_RATE)
            latencies = [job.trace.latency for job in jobs]
            top_k = [[doc.doc_id for doc in job.results] for job in jobs]
            completed = sum(1 for job in jobs if job.done)
            peak_active = network.runtime.peak_active
            coalesced = network.runtime.coalesced_probe_keys()
        else:
            latencies, top_k = [], []
            for index, query in enumerate(e14_workload):
                origin = origins[index % len(origins)]
                results, trace = network.query(origin, list(query))
                latencies.append(trace.rtt_estimate)
                top_k.append([doc.doc_id for doc in results])
            completed = len(e14_workload)
            peak_active = 1
            coalesced = 0
        elapsed = time.perf_counter() - started
        count = float(len(e14_workload))
        runs[label] = {
            "queries": int(count),
            "completed": completed,
            "messages_per_query":
                (network.messages_sent_total() - messages_before) / count,
            "bytes_per_query":
                (network.bytes_sent_total() - bytes_before) / count,
            "latency_p50": percentile(latencies, 50),
            "latency_p95": percentile(latencies, 95),
            "latency_p99": percentile(latencies, 99),
            "virtual_makespan_s": network.simulator.now - clock_before,
            "peak_concurrent_queries": peak_active,
            "coalesced_probe_keys": coalesced,
            "wallclock_s": elapsed,
            "top_k": top_k,
        }
    return runs


def test_e14_async_runtime(capsys, e14_runs):
    independent, batched = e14_runs["async"], e14_runs["async_batched"]
    reduction = 1.0 - (batched["messages_per_query"]
                       / independent["messages_per_query"])
    with capsys.disabled():
        print_table(
            "E14 async query runtime (Poisson open workload)",
            ["variant", "msgs/query", "bytes/query", "lat p50",
             "lat p95", "lat p99", "peak conc", "makespan"],
            [[label,
              round(run["messages_per_query"], 2),
              round(run["bytes_per_query"], 1),
              round(run["latency_p50"], 3),
              round(run["latency_p95"], 3),
              round(run["latency_p99"], 3),
              run["peak_concurrent_queries"],
              round(run["virtual_makespan_s"], 2)]
             for label, run in e14_runs.items()])
        print(f"cross-query batching message reduction: {reduction:.1%}  "
              f"(coalesced probe keys: "
              f"{batched['coalesced_probe_keys']})")
    write_bench_artifact("async_runtime", {
        label: {name: value for name, value in run.items()
                if name != "top_k"}
        for label, run in e14_runs.items()
    } | {
        "arrival_rate": ARRIVAL_RATE,
        "message_reduction_vs_independent_async": reduction,
        "identical_top_k": (
            e14_runs["sequential"]["top_k"] == independent["top_k"]
            == batched["top_k"]),
    })


def test_e14_acceptance(e14_runs):
    sequential = e14_runs["sequential"]
    independent = e14_runs["async"]
    batched = e14_runs["async_batched"]
    # The open workload is sustained: every query completes.
    assert independent["completed"] == independent["queries"]
    assert batched["completed"] == batched["queries"]
    # Concurrency is real, and latency is measured (positive p95).
    assert independent["peak_concurrent_queries"] > 1
    assert independent["latency_p95"] > 0.0
    assert batched["latency_p95"] > 0.0
    # Execution model changes timing, not retrieval semantics.
    assert sequential["top_k"] == independent["top_k"]
    assert independent["top_k"] == batched["top_k"]
    # Cross-query dispatch batching reduces per-query message count
    # versus independent async queries.
    assert batched["messages_per_query"] < \
        independent["messages_per_query"]
    assert batched["coalesced_probe_keys"] > 0

"""E1 — Figure 1: query-lattice processing.

Reproduces the lattice-exploration behaviour of Figure 1: for queries of
2-4 terms, how many lattice nodes are probed vs. skipped, and how often
each probe outcome (untruncated / truncated / missing) occurs, with and
without the truncated-list pruning approximation.

Paper's expectation: domination pruning keeps the probed count well below
the full lattice (2^q - 1), and the approximation prunes more.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_network
from repro.core.config import AlvisConfig
from repro.core.lattice import ProbeStatus
from repro.eval.reporting import print_table


def _explore_series(network, workload, queries_per_size=12):
    by_size = {}
    origin = network.peer_ids()[0]
    for query in workload.pool:
        size = len(query)
        bucket = by_size.setdefault(size, {
            "queries": 0, "probed": 0, "skipped": 0, "untruncated": 0,
            "truncated": 0, "missing": 0})
        if bucket["queries"] >= queries_per_size:
            continue
        _results, trace = network.query(origin, list(query))
        bucket["queries"] += 1
        bucket["probed"] += trace.probed_count
        bucket["skipped"] += trace.skipped_count
        for _key, status in trace.probes:
            if status != ProbeStatus.SKIPPED:
                bucket[status.value] += 1
    return by_size


@pytest.mark.parametrize("prune", [True, False],
                         ids=["prune-on-truncated", "no-truncated-prune"])
def test_e1_lattice_exploration(benchmark, capsys, bench_corpus,
                                bench_workload, prune):
    config = AlvisConfig(prune_on_truncated=prune)
    network = make_network(bench_corpus, config=config)
    origin = network.peer_ids()[0]
    query = list(bench_workload.pool[0])

    benchmark(lambda: network.query(origin, query))

    series = _explore_series(network, bench_workload)
    rows = []
    for size in sorted(series):
        bucket = series[size]
        n = bucket["queries"]
        if n == 0:
            continue
        rows.append([
            size, 2 ** size - 1,
            bucket["probed"] / n, bucket["skipped"] / n,
            bucket["untruncated"] / n, bucket["truncated"] / n,
            bucket["missing"] / n,
        ])
    with capsys.disabled():
        print_table(
            f"E1 Figure-1 lattice processing (prune_on_truncated={prune})",
            ["terms", "lattice", "probed", "skipped", "untruncated",
             "truncated", "missing"],
            rows)

"""E3 — storage scalability of the HDK key vocabulary.

"The number of indexing term combinations remains scalable" (Section 1);
the HDK paper shows the key count grows about linearly with collection
size and is controlled by DF_max and s_max.

Series reproduced: total keys, keys by size, postings stored and bytes
per peer, as functions of (a) collection size and (b) DF_max.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, make_network
from repro.core.config import AlvisConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.eval.reporting import print_table
from repro.eval.storage import storage_report


def _corpus(num_docs):
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=num_docs, vocabulary_size=1200, num_topics=8,
        seed=BENCH_SEED))


@pytest.fixture(scope="module")
def e3_scale_rows():
    rows = []
    for num_docs in (60, 120, 240):
        network = make_network(_corpus(num_docs), num_peers=12)
        report = storage_report(network)
        rows.append([
            num_docs, report.total_keys,
            report.keys_by_size.get(1, 0),
            report.keys_by_size.get(2, 0),
            report.keys_by_size.get(3, 0),
            report.total_postings,
            report.total_bytes / network.num_peers,
        ])
    return rows


@pytest.fixture(scope="module")
def e3_dfmax_rows():
    corpus = _corpus(160)
    rows = []
    for df_max in (20, 40, 80):
        config = AlvisConfig(df_max=df_max)
        network = make_network(corpus, num_peers=12, config=config)
        report = storage_report(network)
        multi = sum(count for size, count in report.keys_by_size.items()
                    if size > 1)
        rows.append([df_max, report.total_keys, multi,
                     report.total_postings, report.summary()["gini"]])
    return rows


def test_e3_storage_vs_collection_size(benchmark, capsys, e3_scale_rows):
    corpus = _corpus(60)
    benchmark.pedantic(
        lambda: make_network(corpus, num_peers=12),
        rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E3a HDK index storage vs collection size",
            ["docs", "keys", "1-term", "2-term", "3-term", "postings",
             "bytes/peer"],
            e3_scale_rows)


def test_e3_storage_vs_dfmax(capsys, e3_dfmax_rows, benchmark,
                             bench_hdk_network):
    benchmark(lambda: storage_report(bench_hdk_network))
    with capsys.disabled():
        print_table(
            "E3b HDK index vs DF_max (160 docs)",
            ["DF_max", "keys", "multi-term keys", "postings",
             "storage gini"],
            e3_dfmax_rows)


def test_e3_shape_holds(e3_scale_rows, e3_dfmax_rows):
    # Keys grow with the collection, but sub-quadratically.
    keys_small = e3_scale_rows[0][1]
    keys_large = e3_scale_rows[-1][1]
    docs_ratio = e3_scale_rows[-1][0] / e3_scale_rows[0][0]
    assert keys_large > keys_small
    assert keys_large / keys_small < docs_ratio ** 2
    # Smaller DF_max -> more expansions -> more multi-term keys.
    assert e3_dfmax_rows[0][2] >= e3_dfmax_rows[-1][2]

"""E12 (extension) — micro-ablations of the retrieval-path knobs.

Three knobs DESIGN.md calls out but no single paper figure owns:

* **lookup caching** — repeated queries skip the O(log n) DHT lookups;
* **parallel lattice probes** — per-level concurrency bounds latency by
  lattice depth instead of lattice size;
* **rare-combination filter** (``expansion_min_df``) — the HDK pruning
  rule that keeps the 3-term key vocabulary from exploding.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, make_network
from repro.core.config import AlvisConfig
from repro.eval.reporting import print_table
from repro.eval.storage import storage_report


@pytest.fixture(scope="module")
def e12_cache_rows(bench_corpus, bench_workload):
    rows = []
    for cached in (False, True):
        network = make_network(
            bench_corpus, config=AlvisConfig(cache_lookups=cached))
        origin = network.peer_ids()[0]
        query = list(bench_workload.pool[0])
        network.query(origin, query)         # warm the cache
        _r, trace = network.query(origin, query)
        rows.append([f"cache={cached}", trace.lookup_hops,
                     trace.bytes_sent, trace.request_messages])
    return rows


@pytest.fixture(scope="module")
def e12_parallel_rows(bench_corpus, bench_workload):
    rows = []
    for parallel in (False, True):
        network = make_network(
            bench_corpus, config=AlvisConfig(parallel_probes=parallel))
        origin = network.peer_ids()[0]
        total_rtt = 0.0
        for query in bench_workload.pool[:10]:
            _r, trace = network.query(origin, list(query))
            total_rtt += trace.rtt_estimate
        rows.append([f"parallel={parallel}", total_rtt / 10])
    return rows


@pytest.fixture(scope="module")
def e12_min_df_rows(bench_corpus):
    rows = []
    for min_df in (1, 2, 4):
        network = make_network(
            bench_corpus, num_peers=12,
            config=AlvisConfig(expansion_min_df=min_df))
        report = storage_report(network)
        multi = sum(count for size, count in report.keys_by_size.items()
                    if size > 1)
        rows.append([min_df, report.total_keys, multi,
                     report.total_postings])
    return rows


def test_e12_ablations(benchmark, capsys, e12_cache_rows,
                       e12_parallel_rows, e12_min_df_rows,
                       bench_hdk_network, bench_workload):
    origin = bench_hdk_network.peer_ids()[0]
    query = list(bench_workload.pool[2])
    benchmark(lambda: bench_hdk_network.query(origin, query))
    with capsys.disabled():
        print_table("E12a lookup caching (repeat query)",
                    ["variant", "hops", "bytes", "messages"],
                    e12_cache_rows)
        print_table("E12b probe parallelism (mean rtt estimate)",
                    ["variant", "rtt (s)"], e12_parallel_rows)
        print_table("E12c rare-combination filter (expansion_min_df)",
                    ["min_df", "keys", "multi-term keys", "postings"],
                    e12_min_df_rows)


def test_e12_shape_holds(e12_cache_rows, e12_parallel_rows,
                         e12_min_df_rows):
    # Caching removes repeat-lookup hops without changing the protocol
    # messages.
    uncached, cached = e12_cache_rows
    assert cached[1] == 0
    assert uncached[1] > 0
    assert cached[3] == uncached[3]
    # Parallel probes never increase latency.
    sequential, parallel = e12_parallel_rows
    assert parallel[1] <= sequential[1]
    # Stricter min_df -> monotonically fewer multi-term keys.
    multi_counts = [row[2] for row in e12_min_df_rows]
    assert multi_counts == sorted(multi_counts, reverse=True)

"""E13 (extension) — the batched + cached query execution engine.

Measures what the engine buys on a Zipf-skewed query workload (the
distribution real query logs follow, which is also what QDI's companion
evaluation assumes): per-query network messages and bytes with frontier
batching + probe caching + top-k early termination, against the seed
per-probe path — with the requirement that the returned top-k documents
are identical.

Acceptance targets tracked by ``BENCH_query_engine.json``:

* >= 30% fewer per-query network messages (batched lookups + cache),
* probe-cache hit rate > 50% under the Zipf workload,
* identical top-k result sets on every query.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import (BENCH_SEED, make_network,
                                 write_bench_artifact)
from repro.core.config import AlvisConfig
from repro.eval.reporting import print_table
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler

#: Engine configuration under test.
ENGINE_OVERRIDES = dict(batch_lookups=True, cache_bytes=64 * 1024,
                        topk_early_stop=True)


@pytest.fixture(scope="module")
def e13_queries(bench_workload, bench_smoke):
    """A Zipf-skewed stream of query-pool indices (rank 0 hottest)."""
    draws = 120 if bench_smoke else 600
    sampler = ZipfSampler(len(bench_workload.pool), exponent=1.1)
    rng = make_rng(BENCH_SEED, "e13-zipf")
    return [bench_workload.pool[rank]
            for rank in sampler.sample_many(rng, draws)]


@pytest.fixture(scope="module")
def e13_networks(bench_corpus):
    """One network per configuration, shared by stream run + timing."""
    return {label: make_network(bench_corpus,
                                config=AlvisConfig(**overrides))
            for label, overrides in (("seed", {}),
                                     ("engine", ENGINE_OVERRIDES))}


@pytest.fixture(scope="module")
def e13_runs(e13_networks, e13_queries):
    """Run the identical query stream through both configurations."""
    runs = {}
    for label, network in e13_networks.items():
        origin = network.peer_ids()[0]
        messages = bytes_sent = hits = misses = pruned = 0.0
        top_k = []
        started = time.perf_counter()
        for query in e13_queries:
            msgs_before = network.messages_sent_total()
            results, trace = network.query(origin, list(query))
            messages += network.messages_sent_total() - msgs_before
            bytes_sent += trace.bytes_sent
            hits += trace.cache_hits
            misses += trace.cache_misses
            pruned += trace.pruned_count
            top_k.append([doc.doc_id for doc in results])
        elapsed = time.perf_counter() - started
        count = float(len(e13_queries))
        runs[label] = {
            "queries": int(count),
            "messages_per_query": messages / count,
            "bytes_per_query": bytes_sent / count,
            "wallclock_s": elapsed,
            "wallclock_per_query_ms": 1000.0 * elapsed / count,
            "cache_hit_rate": (hits / (hits + misses)
                               if hits + misses else 0.0),
            "pruned_per_query": pruned / count,
            "top_k": top_k,
        }
    return runs


def test_e13_query_engine(benchmark, capsys, e13_runs, e13_networks,
                          bench_workload):
    engine_network = e13_networks["engine"]
    origin = engine_network.peer_ids()[0]
    query = list(bench_workload.pool[0])
    engine_network.query(origin, query)          # warm the cache
    benchmark(lambda: engine_network.query(origin, query))
    seed, engine = e13_runs["seed"], e13_runs["engine"]
    reduction = 1.0 - engine["messages_per_query"] / seed[
        "messages_per_query"]
    speedup = seed["wallclock_s"] / max(engine["wallclock_s"], 1e-9)
    with capsys.disabled():
        print_table(
            "E13 batched+cached query engine (Zipf workload)",
            ["variant", "msgs/query", "bytes/query", "ms/query",
             "hit rate", "pruned/query"],
            [[label,
              round(run["messages_per_query"], 2),
              round(run["bytes_per_query"], 1),
              round(run["wallclock_per_query_ms"], 3),
              round(run["cache_hit_rate"], 3),
              round(run["pruned_per_query"], 2)]
             for label, run in e13_runs.items()])
        print(f"message reduction: {reduction:.1%}   "
              f"wall-clock speedup: {speedup:.2f}x")
    write_bench_artifact("query_engine", {
        "seed": {name: value for name, value in seed.items()
                 if name != "top_k"},
        "engine": {name: value for name, value in engine.items()
                   if name != "top_k"},
        "message_reduction": reduction,
        "wallclock_speedup": speedup,
        "identical_top_k": seed["top_k"] == engine["top_k"],
    })


def test_e13_acceptance(e13_runs):
    seed, engine = e13_runs["seed"], e13_runs["engine"]
    # Identical top-k documents on every query of the stream.
    assert seed["top_k"] == engine["top_k"]
    # >= 30% fewer per-query messages.
    reduction = 1.0 - engine["messages_per_query"] / seed[
        "messages_per_query"]
    assert reduction >= 0.30
    # Majority of probes served from the cache on the skewed stream.
    assert engine["cache_hit_rate"] > 0.50
    # The seed path, by definition, never touches a cache.
    assert seed["cache_hit_rate"] == 0.0

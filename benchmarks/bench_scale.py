"""Scale sweep — the 100k-peer kernel benchmark (the scale-out gate).

Sweeps network sizes through :mod:`repro.eval.scale` legs, each in its
own subprocess (isolated peak RSS; the legacy leg additionally sets
``REPRO_PURE_PYTHON=1`` to pin the pre-optimisation scoring path).

Smoke mode (default, CI): a 1k-peer fast leg plus a 1k-peer legacy
leg under a hard per-leg timeout — enough to catch regressions in the
leg runner and in fast/legacy result equality.

``BENCH_FULL=1``: the full 1k -> 10k -> 100k sweep with a 10k-peer
fast-vs-legacy comparison.  Acceptance targets tracked by
``BENCH_scale.json``:

* the sweep completes at every size (100k peers is buildable and
  queryable on one machine);
* the 10k fast leg sustains >= 5x the effective events/sec of the
  legacy kernel on the same churning query workload;
* the 10k fast leg's *indexing phase* (statistics + HDK build) is
  >= 3x faster than the legacy one, building a byte-identical index
  (same ``state_fingerprint``);
* both profiles return byte-identical top-k results for every query.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
import sys

from benchmarks.conftest import BENCH_SEED, write_bench_artifact
from repro.eval.reporting import print_table

#: Hard per-leg subprocess timeout (seconds): smoke legs are small and
#: must stay CI-friendly; full legs include the 100k build.
SMOKE_LEG_TIMEOUT = 300
FULL_LEG_TIMEOUT = 2400

#: The fast/legacy comparison must show at least this effective
#: events/sec ratio on the churning workload.  The 5x gate applies to
#: the full-mode 10k leg (where eager table rebuilds dominate); the 1k
#: smoke leg only regression-checks a looser bound, since at that size
#: a full rebuild is cheap and the ratio sits near the gate.
MIN_SPEEDUP = 5.0
MIN_SPEEDUP_SMOKE = 2.0

#: The indexing phase (statistics + HDK build) must be at least this
#: much faster on the fast profile (packed postings, batched statistics
#: lookups, hop fast path, compact ring) than on the legacy one.  The
#: 3x gate applies to the full-mode 10k leg; the 1k smoke leg checks a
#: looser bound (at that size fixed costs dilute the ratio).
MIN_INDEX_SPEEDUP = 3.0
MIN_INDEX_SPEEDUP_SMOKE = 1.2

#: Corpus size for every leg.  Dense enough that a meaningful fraction
#: of peers contribute documents and the indexing phase is dominated by
#: statistics/publish work rather than per-peer fixed costs (with the
#: old 240-document corpus, 97% of a 10k-peer network had nothing to
#: publish and the indexing comparison mostly measured empty-peer
#: collection round-trips).
LEG_DOCUMENTS = 1000

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _run_leg(peers, profile="fast", pure_python=False, queries=36,
             churn=90, timeout=FULL_LEG_TIMEOUT):
    """Run one leg as ``python -m repro.eval.scale`` and parse its JSON."""
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_PURE_PYTHON", None)
    if pure_python:
        env["REPRO_PURE_PYTHON"] = "1"
    command = [sys.executable, "-m", "repro.eval.scale",
               "--peers", str(peers), "--profile", profile,
               "--documents", str(LEG_DOCUMENTS),
               "--queries", str(queries), "--churn", str(churn),
               "--seed", str(BENCH_SEED), "--json", "-"]
    result = subprocess.run(command, capture_output=True, text=True,
                            env=env, timeout=timeout, cwd=_REPO_ROOT)
    assert result.returncode == 0, \
        f"leg peers={peers} profile={profile} failed:\n{result.stderr}"
    return json.loads(result.stdout)


def _top_k_digest(leg):
    canonical = json.dumps(leg["top_k"], sort_keys=True)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def _strip(leg):
    """Replace the bulky per-query fingerprint with its digest."""
    slim = {name: value for name, value in leg.items()
            if name != "top_k"}
    slim["top_k_sha1"] = _top_k_digest(leg)
    return slim


def _report(legs, comparison, capsys):
    with capsys.disabled():
        print_table(
            "Scale sweep (events/sec = effective, over the churning "
            "workload phase)",
            ["peers", "profile", "events/s", "kernel events/s",
             "bytes/query", "index s", "query s", "wall s",
             "peak RSS MB"],
            [[leg["peers"], leg["kernel_profile"],
              leg["events_per_sec"], leg["kernel_events_per_sec"],
              leg["bytes_per_query"],
              leg["timings"]["indexing_phase_s"],
              leg["timings"]["query_phase_s"], leg["wall_clock_s"],
              leg["peak_rss_kb"] / 1024.0] for leg in legs])
        print(f"fast vs legacy @ {comparison['peers']} peers: "
              f"{comparison['speedup']:.1f}x events/sec, "
              f"{comparison['index_speedup']:.1f}x indexing phase, "
              f"identical top-k: {comparison['identical_top_k']}, "
              f"identical index: {comparison['identical_index']}")


def test_scale_sweep(bench_smoke, capsys):
    if bench_smoke:
        sizes = [1000]
        comparison_peers = 1000
        queries, churn, timeout = 24, 40, SMOKE_LEG_TIMEOUT
        min_speedup = MIN_SPEEDUP_SMOKE
        min_index_speedup = MIN_INDEX_SPEEDUP_SMOKE
    else:
        sizes = [1000, 10_000, 100_000]
        comparison_peers = 10_000
        queries, churn, timeout = 36, 90, FULL_LEG_TIMEOUT
        min_speedup = MIN_SPEEDUP
        min_index_speedup = MIN_INDEX_SPEEDUP

    legs = [_run_leg(peers, "fast", queries=queries, churn=churn,
                     timeout=timeout) for peers in sizes]
    legacy = _run_leg(comparison_peers, "legacy", pure_python=True,
                      queries=queries, churn=churn, timeout=timeout)
    fast = next(leg for leg in legs if leg["peers"] == comparison_peers)

    identical = fast["top_k"] == legacy["top_k"]
    identical_index = (fast["index_fingerprint"]
                       == legacy["index_fingerprint"])
    speedup = (fast["events_per_sec"]
               / max(legacy["events_per_sec"], 1e-9))
    index_speedup = (legacy["timings"]["indexing_phase_s"]
                     / max(fast["timings"]["indexing_phase_s"], 1e-9))
    comparison = {
        "peers": comparison_peers,
        "fast_events_per_sec": fast["events_per_sec"],
        "legacy_events_per_sec": legacy["events_per_sec"],
        "speedup": speedup,
        "identical_top_k": identical,
        "identical_index": identical_index,
        "min_speedup_required": min_speedup,
        "fast_indexing_phase_s": fast["timings"]["indexing_phase_s"],
        "legacy_indexing_phase_s": legacy["timings"]["indexing_phase_s"],
        "index_speedup": index_speedup,
        "min_index_speedup_required": min_index_speedup,
    }
    write_bench_artifact("scale", {
        "legs": [_strip(leg) for leg in legs],
        "legacy_leg": _strip(legacy),
        "comparison": comparison,
    })
    _report(legs + [legacy], comparison, capsys)

    # Acceptance: the optimisation must not change a single result...
    assert identical, "fast and legacy kernels returned different top-k"
    assert identical_index, \
        "fast and legacy profiles built different indexes"
    for leg in legs:
        assert len(leg["top_k"]) == queries
        assert leg["events_processed"] > 0
        assert leg["peak_rss_kb"] > 0
    # ...and must beat the unoptimised kernel by the required margin,
    # on the query workload and on the indexing phase separately.
    assert speedup >= min_speedup, (
        f"fast kernel only {speedup:.2f}x legacy at "
        f"{comparison_peers} peers (need >= {min_speedup}x)")
    assert index_speedup >= min_index_speedup, (
        f"indexing phase only {index_speedup:.2f}x legacy at "
        f"{comparison_peers} peers (need >= {min_index_speedup}x)")

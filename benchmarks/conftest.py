"""Shared benchmark fixtures.

Experiment scenarios are expensive (corpus generation + statistics phase +
index build); they are session-scoped and shared across benchmark files.
Every benchmark prints its result table through ``capsys.disabled()`` so
the series appear on the terminal (and in ``bench_output.txt``).
"""

from __future__ import annotations

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig

#: The reference scenario used by several experiments.
BENCH_SEED = 1234


@pytest.fixture(scope="session")
def bench_corpus() -> SyntheticCorpus:
    """240 documents / 1200-term vocabulary: large enough for HDK
    expansion and meaningful df skew, small enough for quick runs."""
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=240, vocabulary_size=1200, num_topics=8,
        seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_workload(bench_corpus) -> QueryWorkload:
    return QueryWorkload.from_corpus(
        bench_corpus,
        QueryWorkloadConfig(pool_size=60, min_terms=2, max_terms=3,
                            seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_hdk_network(bench_corpus) -> AlvisNetwork:
    network = AlvisNetwork(num_peers=16, config=AlvisConfig(),
                           seed=BENCH_SEED)
    network.distribute_documents(bench_corpus.documents())
    network.build_index(mode="hdk")
    return network


def make_network(corpus, num_peers=16, mode="hdk", config=None,
                 seed=BENCH_SEED, **network_kwargs) -> AlvisNetwork:
    """Build a fresh network over ``corpus`` (for sweeps that mutate)."""
    network = AlvisNetwork(num_peers=num_peers,
                           config=config or AlvisConfig(), seed=seed,
                           **network_kwargs)
    network.distribute_documents(corpus.documents())
    network.build_index(mode=mode)
    return network

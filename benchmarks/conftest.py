"""Shared benchmark fixtures.

Experiment scenarios are expensive (corpus generation + statistics phase +
index build); they are session-scoped and shared across benchmark files.
Every benchmark prints its result table through ``capsys.disabled()`` so
the series appear on the terminal (and in ``bench_output.txt``).

Two run modes: plain ``pytest benchmarks/`` runs in *smoke* mode (scaled
down so each experiment finishes in seconds — CI-friendly); set
``BENCH_FULL=1`` in the environment for full-size runs.  Benchmarks that
track the perf trajectory persist a JSON artifact via
:func:`write_bench_artifact` (``benchmarks/BENCH_<name>.json``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core.config import AlvisConfig
from repro.core.network import AlvisNetwork
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.util.process import peak_rss_kb

#: The reference scenario used by several experiments.
BENCH_SEED = 1234

#: Smoke mode (the default) shrinks workloads for sub-10s runs; export
#: BENCH_FULL=1 for the full-size series.
BENCH_SMOKE = os.environ.get("BENCH_FULL", "") != "1"

_ARTIFACT_DIR = pathlib.Path(__file__).resolve().parent


@pytest.fixture(scope="session")
def bench_smoke() -> bool:
    """True when running the scaled-down (default) benchmark mode."""
    return BENCH_SMOKE


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--profile", action="store_true", default=False,
            help="profile each benchmark with cProfile; writes "
                 "benchmarks/profiles/<test>.prof and prints the top "
                 "functions by cumulative time")
    except ValueError:  # pragma: no cover - option already registered
        pass


@pytest.fixture(autouse=True)
def _bench_profiler(request):
    """Opt-in cProfile wrapper around every benchmark test.

    Enabled by ``pytest benchmarks/ --profile`` or ``BENCH_PROFILE=1``;
    off by default so profiling overhead never distorts the recorded
    throughput numbers.
    """
    enabled = (request.config.getoption("--profile", default=False)
               or os.environ.get("BENCH_PROFILE", "") == "1")
    # pytest-benchmark's calibrated timing loop cannot run under an
    # active cProfile (only one profiler can hold sys.setprofile).
    if not enabled or "benchmark" in request.fixturenames:
        yield
        return
    import cProfile
    import pstats
    profiler = cProfile.Profile()
    profiler.enable()
    yield
    profiler.disable()
    profile_dir = _ARTIFACT_DIR / "profiles"
    profile_dir.mkdir(exist_ok=True)
    safe_name = request.node.name.replace("/", "_").replace("[", "_") \
        .replace("]", "")
    path = profile_dir / f"{safe_name}.prof"
    profiler.dump_stats(path)
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        print(f"\n--- cProfile: {request.node.name} -> {path} ---")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(15)


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Persist one benchmark's result dict as ``BENCH_<name>.json``.

    The artifact records the run mode so trajectory tooling never mixes
    smoke-mode numbers with full-size ones.
    """
    path = _ARTIFACT_DIR / f"BENCH_{name}.json"
    document = {"name": name, "smoke": BENCH_SMOKE, "seed": BENCH_SEED,
                "peak_rss_kb": peak_rss_kb()}
    document.update(payload)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_corpus() -> SyntheticCorpus:
    """240 documents / 1200-term vocabulary: large enough for HDK
    expansion and meaningful df skew, small enough for quick runs."""
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=240, vocabulary_size=1200, num_topics=8,
        seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_workload(bench_corpus) -> QueryWorkload:
    return QueryWorkload.from_corpus(
        bench_corpus,
        QueryWorkloadConfig(pool_size=60, min_terms=2, max_terms=3,
                            seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_hdk_network(bench_corpus) -> AlvisNetwork:
    network = AlvisNetwork(num_peers=16, config=AlvisConfig(),
                           seed=BENCH_SEED)
    network.distribute_documents(bench_corpus.documents())
    network.build_index(mode="hdk")
    return network


def make_network(corpus, num_peers=16, mode="hdk", config=None,
                 seed=BENCH_SEED, **network_kwargs) -> AlvisNetwork:
    """Build a fresh network over ``corpus`` (for sweeps that mutate)."""
    network = AlvisNetwork(num_peers=num_peers,
                           config=config or AlvisConfig(), seed=seed,
                           **network_kwargs)
    network.distribute_documents(corpus.documents())
    network.build_index(mode=mode)
    return network

"""E17 — the scenario atlas as a regression suite.

Runs every named scenario of :mod:`repro.scenarios.registry` (churn
storm, flash crowd, partition+heal, graceful drain, slow minority, and
the Poisson baseline) and records recall@k / p99 / goodput per scenario
in ``BENCH_scenarios.json``, with each scenario's declared pass
criteria evaluated.

Acceptance targets:

* every scenario completes its full query stream and *passes* its own
  declared criteria at the benchmark seed;
* the baseline scenario is the E14 open workload in scenario clothing:
  replaying its exact base query stream through the legacy
  ``run_queries`` path on an identically-built network yields identical
  per-query top-k (the Workload API redesign changed no retrieval
  semantics).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_bench_artifact
from repro.eval.reporting import print_table
from repro.scenarios import ScenarioRunner, get_scenario, scenario_names

#: The atlas is deterministic per seed; the benchmark pins one.
SCENARIO_SEED = 0


def _scaled(name, bench_smoke):
    scenario = get_scenario(name)
    # The registry sizes are already smoke-friendly (seconds per
    # scenario); full mode doubles the network and the stream for a
    # more crowded story.
    if not bench_smoke:
        scenario = scenario.scaled(num_peers=scenario.num_peers * 2,
                                   queries=scenario.workload.queries * 2)
    return scenario


@pytest.fixture(scope="module")
def e17_runs(bench_smoke):
    runs = {}
    for name in scenario_names():
        runner = ScenarioRunner(_scaled(name, bench_smoke),
                                seed=SCENARIO_SEED)
        started = time.perf_counter()
        report = runner.run()
        elapsed = time.perf_counter() - started
        runs[name] = {"report": report, "runner": runner,
                      "wallclock_s": elapsed}
    return runs


def test_e17_scenario_atlas(capsys, e17_runs):
    with capsys.disabled():
        print_table(
            "E17 scenario atlas (declared pass criteria per scenario)",
            ["scenario", "passed", "recall@k", "p99", "goodput q/s",
             "dropped", "handover B", "peers", "wallclock"],
            [[name,
              "PASS" if run["report"].passed else "FAIL",
              round(run["report"].recall_at_k, 3),
              round(run["report"].latency_p99, 4),
              round(run["report"].goodput_qps, 1),
              run["report"].dropped_probes,
              run["report"].handover_bytes,
              f"{run['report'].peers_start}->"
              f"{run['report'].peers_end}",
              round(run["wallclock_s"], 2)]
             for name, run in e17_runs.items()])
    write_bench_artifact("scenarios", {
        "scenario_seed": SCENARIO_SEED,
        "scenarios": {name: dict(run["report"].to_dict(),
                                 wallclock_s=run["wallclock_s"])
                      for name, run in e17_runs.items()},
    })


def test_e17_acceptance(e17_runs):
    for name, run in e17_runs.items():
        report = run["report"]
        # Every scenario evaluates explicit criteria and passes them.
        assert report.criteria, f"{name} declares no criteria"
        assert report.passed, (
            f"{name} failed its declared criteria: "
            + "; ".join(str(criterion) for criterion in report.criteria
                        if not criterion.passed))
        # Drops surface as probe outcomes, never as lost queries.
        assert report.queries_completed == report.queries_submitted


def test_e17_baseline_matches_run_queries_path(e17_runs):
    """The scenario layer is a pure re-surfacing of the E14 path:
    identical top-k for the baseline scenario vs ``run_queries``."""
    runner = e17_runs["baseline_poisson"]["runner"]
    scenario_top_k = [[document.doc_id for document in job.results]
                      for job in runner.base_jobs]
    replay = runner.build_network()
    replay_jobs = replay.run_queries(
        runner.base_queries,
        arrival_rate=runner.scenario.workload.arrival_rate)
    replay_top_k = [[document.doc_id for document in job.results]
                    for job in replay_jobs]
    assert scenario_top_k == replay_top_k
    # Same arrival schedule too.  The oracle pre-pass shifts the
    # scenario's absolute clock, so timestamps differ by a constant and
    # per-query latencies only by float summation order — compare those
    # within float-accumulation tolerance.
    assert [job.trace.latency for job in runner.base_jobs] == \
        pytest.approx([job.trace.latency for job in replay_jobs],
                      abs=1e-9)

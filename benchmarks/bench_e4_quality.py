"""E4 — retrieval quality vs. a centralized engine.

"The retrieval quality remains comparable to state-of-the-art centralized
search engines" (Section 1).

Series reproduced: overlap@10 with the centralized conjunctive BM25
reference as a function of the truncation bound k, for HDK; plus the
two-step refinement's effect.  Expected shape: overlap close to 1.0,
monotone-ish in k, refinement never hurting.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_network
from repro.baselines.centralized import CentralizedEngine
from repro.core.config import AlvisConfig
from repro.eval.quality import overlap_at_k
from repro.eval.reporting import print_table


def _reference_for(network):
    documents = []
    for peer in network.peers():
        documents.extend(peer.engine.store)
    return CentralizedEngine(documents, analyzer=network.analyzer)


def _mean_overlap(network, reference, workload, refine=False,
                  queries=25):
    origin = network.peer_ids()[0]
    overlaps = []
    for query in workload.pool[:queries]:
        truth = reference.conjunctive_doc_ids(list(query), k=10)
        if not truth:
            continue
        results, _trace = network.query(origin, list(query),
                                        refine=refine)
        overlaps.append(overlap_at_k([doc.doc_id for doc in results],
                                     truth, 10))
    return sum(overlaps) / len(overlaps)


@pytest.fixture(scope="module")
def e4_rows(bench_corpus, bench_workload):
    rows = []
    for k in (5, 10, 20, 40):
        network = make_network(bench_corpus,
                               config=AlvisConfig(truncation_k=k))
        reference = _reference_for(network)
        plain = _mean_overlap(network, reference, bench_workload)
        refined = _mean_overlap(network, reference, bench_workload,
                                refine=True)
        rows.append([k, plain, refined])
    return rows


def test_e4_quality_vs_truncation(benchmark, capsys, e4_rows,
                                  bench_hdk_network, bench_workload):
    reference = _reference_for(bench_hdk_network)
    query = list(bench_workload.pool[0])
    benchmark(lambda: reference.conjunctive_doc_ids(query, k=10))
    with capsys.disabled():
        print_table(
            "E4 overlap@10 vs centralized conjunctive BM25",
            ["truncation k", "HDK", "HDK + refinement"],
            e4_rows)


def test_e4_shape_holds(e4_rows):
    # The sweep's shape: overlap monotone in the truncation bound,
    # "comparable to centralized" (>= 0.9) once k exceeds the result
    # cutoff, and refinement never hurting.
    overlaps = [plain for _k, plain, _refined in e4_rows]
    assert overlaps == sorted(overlaps)
    for _k, plain, refined in e4_rows:
        assert refined >= plain - 1e-9
    assert e4_rows[-1][1] >= 0.9
    assert e4_rows[-1][2] >= 0.95

"""E11 (extension) — replication overhead vs. crash durability.

Not a figure of the demo paper itself, but a requirement for running the
demo: the live network must keep answering while peers disappear without
notice.  This bench quantifies the ablation DESIGN.md calls out: the
replication factor's storage/traffic overhead against the fraction of
global-index keys that survive simultaneous crashes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, make_network
from repro.core.replication import ReplicationManager
from repro.eval.reporting import print_table
from repro.util.rng import make_rng


def _survival_run(bench_corpus, replication_factor, crashes):
    network = make_network(bench_corpus, num_peers=16)
    network.reset_traffic()
    manager = None
    if replication_factor > 0:
        manager = ReplicationManager(
            network, replication_factor=replication_factor)
        manager.replicate_all()
    replication_bytes = network.bytes_by_kind().get("ReplicaPush", 0.0)
    replica_storage = sum(
        sum(entry.storage_bytes()
            for entry in peer.replica_store.values())
        for peer in network.peers())
    primary_keys = {entry.key
                    for peer in network.peers()
                    for entry in peer.fragment
                    if entry.postings or entry.contributors}
    rng = make_rng(BENCH_SEED, "e11", replication_factor, crashes)
    victims = rng.sample(network.peer_ids(), crashes)
    for victim in victims:
        network.fail_peer(victim)
    if manager is not None:
        manager.repair()
    surviving = {entry.key
                 for peer in network.peers()
                 for entry in peer.fragment
                 if entry.postings or entry.contributors}
    survival = len(primary_keys & surviving) / len(primary_keys)
    return {
        "replication_bytes": replication_bytes,
        "replica_storage": replica_storage,
        "survival": survival,
    }


@pytest.fixture(scope="module")
def e11_rows(bench_corpus):
    rows = []
    for factor in (0, 1, 2):
        for crashes in (1, 3):
            run = _survival_run(bench_corpus, factor, crashes)
            rows.append([factor, crashes,
                         run["replication_bytes"],
                         run["replica_storage"],
                         run["survival"]])
    return rows


def test_e11_replication_tradeoff(benchmark, capsys, e11_rows,
                                  bench_corpus):
    benchmark.pedantic(
        lambda: _survival_run(bench_corpus, 1, 1), rounds=1,
        iterations=1)
    with capsys.disabled():
        print_table(
            "E11 replication factor vs crash durability (16 peers)",
            ["factor", "crashes", "replication bytes",
             "replica storage", "key survival"],
            e11_rows)


def test_e11_shape_holds(e11_rows):
    by_config = {(row[0], row[1]): row for row in e11_rows}
    # No replication: crashes lose keys.
    assert by_config[(0, 3)][4] < 1.0
    # Factor 2 survives 3 scattered crashes (almost surely: losing a key
    # needs 3 consecutive ring neighbours to die).
    assert by_config[(2, 1)][4] == pytest.approx(1.0)
    assert by_config[(2, 3)][4] > 0.97
    # Overhead is monotone in the factor.
    assert by_config[(2, 1)][2] > by_config[(1, 1)][2] > 0
    assert by_config[(0, 1)][2] == 0
    # More replication -> better or equal survival.
    for crashes in (1, 3):
        assert by_config[(2, crashes)][4] >= by_config[(0, crashes)][4]
"""E10 — Figures 4-6 / Section 4: client workflows.

The demo GUI exercises: joining the network, indexing dropped-in
documents, access-controlled retrieval, and external-engine integration
via Alvis document digests.  This bench drives the exact same flows
through the public API and reports their cost.

Series reproduced: per-operation virtual-network cost (messages, bytes)
for join+handover, incremental document publishing, digest import,
protected fetch.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_network
from repro.core.access import AccessPolicy
from repro.eval.reporting import print_table
from repro.ir.digest import digest_from_terms, parse_digest, render_digest
from repro.ir.documents import Document


@pytest.fixture(scope="module")
def e10_rows(bench_corpus):
    network = make_network(bench_corpus, num_peers=12)
    rows = []

    def measured(label, action):
        before_bytes = network.bytes_sent_total()
        before_msgs = network.messages_sent_total()
        action()
        rows.append([label,
                     network.messages_sent_total() - before_msgs,
                     network.bytes_sent_total() - before_bytes])

    # 1. A new peer joins; its key range is handed over.
    churn = network.churn()
    measured("peer join (handover)", churn.join)

    # 2. Drag & drop: publish one new document incrementally.
    fresh = Document(doc_id=0, title="Fresh results",
                     text="fresh benchmark numbers for the zebra "
                          "quagga corpus appear here")
    host = network.peer_ids()[0]
    measured("publish new document",
             lambda: network.publish_incremental(host, fresh))

    # 3. External engine: import a digest and publish it.
    digests = [digest_from_terms(
        "http://library/item1", "Library item",
        ["archive", "manuscript", "medieval", "archive"])]
    xml_text = render_digest(digests)

    def import_digest():
        parsed = parse_digest(xml_text)[0]
        document = Document(doc_id=0, title=parsed.title,
                            text=" ".join(parsed.term_sequence()),
                            url=parsed.url)
        network.publish_incremental(host, document)

    measured("digest import + publish", import_digest)

    # 4. Protected fetch: publish with a password, fetch twice.
    secret = Document(doc_id=0, title="Protected",
                      text="restricted content xylophone")
    doc_id = network.publish_incremental(
        network.peer_ids()[1], secret)
    network.peer(network.peer_ids()[1]).access.set_policy(
        doc_id, AccessPolicy.password("alice", "pw"))
    origin = network.peer_ids()[2]

    def protected_fetch():
        denied = network.fetch_document(origin, doc_id)
        assert not denied["ok"]
        granted = network.fetch_document(origin, doc_id,
                                         credentials=("alice", "pw"))
        assert granted["ok"]

    measured("protected fetch (deny+grant)", protected_fetch)

    # 5. Search for the incrementally published document.
    def end_to_end_search():
        results, _trace = network.query(origin, "zebra quagga")
        assert results

    measured("query for fresh document", end_to_end_search)
    return rows


def test_e10_client_workflows(benchmark, capsys, e10_rows, bench_corpus):
    network = make_network(bench_corpus, num_peers=12, seed=777)
    origin = network.peer_ids()[0]
    benchmark(lambda: network.fetch_document(
        origin, 1, terms=["benchmark"]))
    with capsys.disabled():
        print_table(
            "E10 client workflow costs",
            ["operation", "messages", "bytes"],
            e10_rows)


def test_e10_shape_holds(e10_rows):
    by_label = {row[0]: row for row in e10_rows}
    assert by_label["peer join (handover)"][2] > 0
    assert by_label["publish new document"][1] > 0
    assert by_label["digest import + publish"][2] > 0
    assert by_label["protected fetch (deny+grant)"][1] >= 2

"""E15 (extension) — congestion-aware query runtime at the knee.

E8 validates the NCA'06 AIMD controller against a single synthetic
queueing node; this experiment measures the same controller *grafted
onto the retrieval path* (``config.congestion_control``): every peer
endpoint is a bounded service queue (``service_rate``/
``queue_capacity``, with overflow shedding costing the server real
work), and a Poisson open workload of Zipf-skewed queries is swept
through the saturation knee under two dispatch disciplines:

* ``uncontrolled`` — the PR-2 async runtime plus blind timeout
  retransmission of overflow drops: the open-loop behaviour whose
  retransmission storms waste hot owners' capacity;
* ``aimd``         — the per-origin congestion window: outstanding
  dispatcher sends bounded, multiplicative decrease at most once per
  RTT, window-paced retransmission, backlog merging and size-triggered
  flushes.

Acceptance targets tracked by ``BENCH_congestion_runtime.json``:

* identical top-k results across both disciplines at every arrival
  rate (flow control changes timing, never retrieval semantics);
* at and past the saturation knee the AIMD discipline sustains goodput
  at or above the uncontrolled one, with a lower drop rate and bounded
  p99 latency.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import (BENCH_SEED, make_network,
                                 write_bench_artifact)
from repro.core.config import AlvisConfig
from repro.eval.reporting import print_table
from repro.util.rng import make_rng
from repro.util.stats import percentile
from repro.util.zipf import ZipfSampler

#: Arrival rates (queries per virtual second) swept through the knee.
ARRIVAL_RATES = (20.0, 40.0, 60.0, 90.0, 150.0)

#: Shared service model: each endpoint serves 40 msgs/s with 6 queue
#: slots; shedding an overflow arrival costs half a service slot.
SERVICE_MODEL = dict(service_rate=40.0, queue_capacity=6,
                     service_reject_cost=0.5)

VARIANTS = {
    "uncontrolled": dict(congestion_control=False),
    "aimd": dict(congestion_control=True,
                 congestion_initial_window=2.0,
                 congestion_max_window=64.0),
}


@pytest.fixture(scope="module")
def e15_workload(bench_workload, bench_smoke):
    """A Zipf-skewed open query stream (hot queries arrive concurrently,
    concentrating load on their keys' owners)."""
    draws = 80 if bench_smoke else 240
    sampler = ZipfSampler(len(bench_workload.pool), exponent=1.1)
    rng = make_rng(BENCH_SEED, "e15-zipf")
    return [bench_workload.pool[rank]
            for rank in sampler.sample_many(rng, draws)]


def _run_point(bench_corpus, workload, rate, overrides):
    config = AlvisConfig(batch_lookups=True, async_queries=True,
                         dispatch_window=0.02,
                         congestion_max_retransmits=100,
                         **SERVICE_MODEL, **overrides)
    network = make_network(bench_corpus, config=config)
    origins = network.peer_ids()[:4]
    clock_before = network.simulator.now
    started = time.perf_counter()
    jobs = network.run_queries(workload, origins=origins,
                               arrival_rate=rate)
    elapsed = time.perf_counter() - started
    makespan = network.simulator.now - clock_before
    latencies = [job.trace.latency for job in jobs]
    service = network.transport.service_stats()
    congestion = network.runtime.congestion_summary()
    return {
        "queries": len(jobs),
        "completed": sum(1 for job in jobs if job.done),
        "goodput": len(jobs) / makespan,
        "latency_p50": percentile(latencies, 50),
        "latency_p95": percentile(latencies, 95),
        "latency_p99": percentile(latencies, 99),
        "queue_drops": service["dropped"],
        "drop_rate": (service["dropped"] / service["arrived"]
                      if service["arrived"] else 0.0),
        "retransmissions": int(congestion["retransmissions"]),
        "window_decreases": int(congestion["window_decreases"]),
        "dropped_probes": sum(job.trace.dropped_count for job in jobs),
        "virtual_makespan_s": makespan,
        "wallclock_s": elapsed,
        "top_k": [[doc.doc_id for doc in job.results] for job in jobs],
    }


@pytest.fixture(scope="module")
def e15_runs(bench_corpus, e15_workload):
    """Both dispatch disciplines at every arrival rate."""
    runs = {label: {} for label in VARIANTS}
    for rate in ARRIVAL_RATES:
        for label, overrides in VARIANTS.items():
            runs[label][rate] = _run_point(bench_corpus, e15_workload,
                                           rate, overrides)
    return runs


def _knee_rate(runs):
    """The first swept rate where the uncontrolled discipline sheds a
    non-trivial share of arrivals — the saturation knee."""
    for rate in ARRIVAL_RATES:
        if runs["uncontrolled"][rate]["drop_rate"] > 0.01:
            return rate
    return ARRIVAL_RATES[-1]


def test_e15_congestion_runtime(capsys, e15_runs):
    knee = _knee_rate(e15_runs)
    rows = []
    for rate in ARRIVAL_RATES:
        open_loop = e15_runs["uncontrolled"][rate]
        aimd = e15_runs["aimd"][rate]
        rows.append([rate,
                     round(open_loop["goodput"], 2),
                     round(open_loop["latency_p99"], 2),
                     round(open_loop["drop_rate"], 3),
                     round(aimd["goodput"], 2),
                     round(aimd["latency_p99"], 2),
                     round(aimd["drop_rate"], 3),
                     aimd["retransmissions"]])
    with capsys.disabled():
        print_table(
            f"E15 congestion-aware dispatch (knee at {knee:.0f} q/s; "
            f"service {SERVICE_MODEL['service_rate']:.0f} msg/s per "
            f"endpoint)",
            ["arrival q/s", "open goodput", "open p99", "open droprate",
             "AIMD goodput", "AIMD p99", "AIMD droprate", "AIMD rtx"],
            rows)
    write_bench_artifact("congestion_runtime", {
        "arrival_rates": list(ARRIVAL_RATES),
        "knee_rate": knee,
        "service_model": SERVICE_MODEL,
        "identical_top_k": all(
            e15_runs["uncontrolled"][rate]["top_k"]
            == e15_runs["aimd"][rate]["top_k"]
            for rate in ARRIVAL_RATES),
        "runs": {
            label: {str(int(rate)): {name: value
                                     for name, value in point.items()
                                     if name != "top_k"}
                    for rate, point in by_rate.items()}
            for label, by_rate in e15_runs.items()
        },
    })


def test_e15_acceptance(e15_runs):
    knee = _knee_rate(e15_runs)
    pre_knee_p99 = e15_runs["aimd"][ARRIVAL_RATES[0]]["latency_p99"]
    for rate in ARRIVAL_RATES:
        open_loop = e15_runs["uncontrolled"][rate]
        aimd = e15_runs["aimd"][rate]
        # The open workload is sustained and semantics-preserving:
        # every query completes, identical top-k, no probe ever lost.
        assert open_loop["completed"] == open_loop["queries"]
        assert aimd["completed"] == aimd["queries"]
        assert open_loop["top_k"] == aimd["top_k"]
        assert aimd["dropped_probes"] == 0
        if rate < knee:
            continue
        # At and past the knee: AIMD sustains goodput at or above the
        # open-loop discipline, sheds fewer arrivals, and keeps p99
        # bounded (below the collapsing open loop, and within a small
        # multiple of the uncongested latency).
        assert aimd["goodput"] >= open_loop["goodput"]
        assert aimd["drop_rate"] < open_loop["drop_rate"]
        assert aimd["latency_p99"] <= open_loop["latency_p99"]
        assert aimd["latency_p99"] <= 5.0 * pre_knee_p99
    # The knee is actually inside the sweep (the experiment saturates).
    assert knee < ARRIVAL_RATES[-1]
    # Congestion really happened and the controller really reacted.
    worst = e15_runs["aimd"][ARRIVAL_RATES[-1]]
    assert worst["queue_drops"] > 0
    assert worst["window_decreases"] > 0

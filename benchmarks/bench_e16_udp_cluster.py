"""E16 (extension) — the query engine over a real localhost UDP cluster.

Every earlier experiment executes against the discrete-event simulator;
this one replays an E14-style Zipf open workload through the *same*
engine over real asyncio/UDP sockets between OS processes
(:mod:`repro.cluster`), with the simulator run of the identical query
stream as the reference.  Three things become measurable only here:

* **wall-clock throughput and latency percentiles** — queries/sec and
  p50/p95/p99 of real, socket-measured response times (the
  RealtimeKernel anchors the virtual clock to ``time.monotonic``);
* **wire fidelity** — the codec is size-exact against the byte model
  (``WIRE_SIZE_DELTA == 0``), so modelled bytes/query from the
  simulator and from the UDP run describe the same wire, and the raw
  datagram counters expose the real overhead (acks, handshake);
* **cross-backend equivalence** — identical top-k lists for the fixed
  seed, asserted, which is the acceptance bar for the pluggable
  transport refactor.

Emits ``benchmarks/BENCH_udp_cluster.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_SEED, write_bench_artifact
from repro.cluster import ClusterDriver, ClusterSpec, build_network
from repro.corpus.queries import QueryWorkload, QueryWorkloadConfig
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.eval.reporting import print_table
from repro.util.rng import make_rng
from repro.util.stats import percentile
from repro.util.zipf import ZipfSampler

#: Arrival rate (queries per wall-clock second) of the open workload.
ARRIVAL_RATE = 60.0


@pytest.fixture(scope="module")
def e16_spec(bench_smoke) -> ClusterSpec:
    if bench_smoke:
        return ClusterSpec(num_peers=10, num_hosts=2, seed=BENCH_SEED,
                           num_docs=120, vocabulary_size=600,
                           mode="hdk", request_timeout=5.0,
                           config_overrides={"batch_lookups": True})
    return ClusterSpec(num_peers=16, num_hosts=3, seed=BENCH_SEED,
                       num_docs=240, vocabulary_size=1200,
                       mode="hdk", request_timeout=5.0,
                       config_overrides={"batch_lookups": True})


@pytest.fixture(scope="module")
def e16_workload(e16_spec, bench_smoke):
    """Zipf-skewed draws from a pool over the cluster's own corpus."""
    corpus = SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=e16_spec.num_docs,
        vocabulary_size=e16_spec.vocabulary_size, seed=e16_spec.seed))
    pool = QueryWorkload.from_corpus(
        corpus, QueryWorkloadConfig(pool_size=40, min_terms=2,
                                    max_terms=3, seed=BENCH_SEED)).pool
    draws = 24 if bench_smoke else 120
    sampler = ZipfSampler(len(pool), exponent=1.1)
    rng = make_rng(BENCH_SEED, "e16-zipf")
    return [list(pool[rank]) for rank in sampler.sample_many(rng, draws)]


@pytest.fixture(scope="module")
def e16_runs(e16_spec, e16_workload):
    """The same query stream on the simulator and over real UDP."""
    runs = {}

    # Reference: default backend, queries executed sequentially against
    # an identical twin build (modelled bytes, modelled latency).
    sim_net = build_network(e16_spec)
    origins = sorted(sim_net.peer_ids())[:4]
    bytes_before = sim_net.bytes_sent_total()
    messages_before = sim_net.messages_sent_total()
    sim_top_k = []
    sim_latencies = []
    for index, query in enumerate(e16_workload):
        results, trace = sim_net.query(origins[index % len(origins)],
                                       query)
        sim_top_k.append([document.doc_id for document in results])
        sim_latencies.append(trace.rtt_estimate)
    count = float(len(e16_workload))
    runs["simulator"] = {
        "queries": int(count),
        "bytes_per_query":
            (sim_net.bytes_sent_total() - bytes_before) / count,
        "messages_per_query":
            (sim_net.messages_sent_total() - messages_before) / count,
        "latency_p50": percentile(sim_latencies, 50),
        "latency_p95": percentile(sim_latencies, 95),
        "latency_p99": percentile(sim_latencies, 99),
        "top_k": sim_top_k,
    }

    # Real run: one driver + (num_hosts - 1) spawned OS processes,
    # Poisson arrivals through the async runtime over localhost UDP.
    with ClusterDriver(e16_spec) as driver:
        transport = driver.network.transport
        bytes_before = driver.network.bytes_sent_total()
        messages_before = driver.network.messages_sent_total()
        wire_before = transport.wire_bytes_sent
        datagrams_before = transport.datagrams_sent
        started = time.perf_counter()
        jobs = driver.run_open_workload(
            e16_workload, origins=origins, arrival_rate=ARRIVAL_RATE,
            timeout=300.0)
        elapsed = time.perf_counter() - started
        latencies = [job.trace.latency for job in jobs]
        runs["udp_cluster"] = {
            "queries": int(count),
            "completed": sum(1 for job in jobs if job.done),
            "hosts": e16_spec.num_hosts,
            "queries_per_sec": count / elapsed,
            "bytes_per_query":
                (driver.network.bytes_sent_total() - bytes_before)
                / count,
            "messages_per_query":
                (driver.network.messages_sent_total() - messages_before)
                / count,
            "wire_bytes_per_query":
                (transport.wire_bytes_sent - wire_before) / count,
            "datagrams_per_query":
                (transport.datagrams_sent - datagrams_before) / count,
            "latency_p50": percentile(latencies, 50),
            "latency_p95": percentile(latencies, 95),
            "latency_p99": percentile(latencies, 99),
            "wallclock_s": elapsed,
            "decode_errors": transport.decode_errors,
            "top_k": [[document.doc_id for document in job.results]
                      for job in jobs],
        }
    return runs


def test_e16_udp_cluster(capsys, e16_runs):
    simulator, udp = e16_runs["simulator"], e16_runs["udp_cluster"]
    with capsys.disabled():
        print_table(
            "E16 real UDP cluster vs simulator (Zipf open workload)",
            ["backend", "bytes/query", "msgs/query", "lat p50",
             "lat p95", "lat p99", "qps"],
            [["simulator",
              round(simulator["bytes_per_query"], 1),
              round(simulator["messages_per_query"], 2),
              round(simulator["latency_p50"], 4),
              round(simulator["latency_p95"], 4),
              round(simulator["latency_p99"], 4),
              "-"],
             ["udp_cluster",
              round(udp["bytes_per_query"], 1),
              round(udp["messages_per_query"], 2),
              round(udp["latency_p50"], 4),
              round(udp["latency_p95"], 4),
              round(udp["latency_p99"], 4),
              round(udp["queries_per_sec"], 1)]])
        print(f"raw wire: {udp['wire_bytes_per_query']:.1f} bytes/query "
              f"in {udp['datagrams_per_query']:.1f} datagrams "
              f"({udp['hosts']} processes; driver-local deliveries "
              f"never reach the socket, acks/handshake do)")
    write_bench_artifact("udp_cluster", {
        "arrival_rate": ARRIVAL_RATE,
        "simulator": {name: value
                      for name, value in simulator.items()
                      if name != "top_k"},
        "udp_cluster": {name: value for name, value in udp.items()
                        if name != "top_k"},
        "identical_top_k": simulator["top_k"] == udp["top_k"],
    })


def test_e16_acceptance(e16_runs):
    simulator, udp = e16_runs["simulator"], e16_runs["udp_cluster"]
    # Every query of the open workload completes over real sockets.
    assert udp["completed"] == udp["queries"]
    # Cross-backend equivalence: the transport changes timing, never
    # retrieval semantics.
    assert simulator["top_k"] == udp["top_k"]
    # Real throughput was measured, and nothing on the wire was mangled.
    assert udp["queries_per_sec"] > 0
    assert udp["decode_errors"] == 0
    # Real datagrams crossed the socket (the run wasn't all-local).
    assert udp["wire_bytes_per_query"] > 0

"""E5 — QDI adaptivity to the query distribution.

"The processing of new queries triggers the indexing of popular term
combinations, which, in turn, increases the overall retrieval quality.
At the same time, obsolete keys can be removed, resulting in an efficient
indexing structure adaptive to the current query popularity distribution"
(Section 2).

Series reproduced: over a Zipfian query stream, per-window (a) hit rate
of the full-query key, (b) probes per query, (c) on-demand keys indexed
and evicted.  Then a drift phase showing the index following the new
distribution.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, make_network
from repro.core.config import AlvisConfig
from repro.core.lattice import ProbeStatus
from repro.eval.reporting import print_table
from repro.util.rng import make_rng

_WINDOW = 50


def _run_stream(network, workload, num_queries, drift=0, rng_label="s"):
    rng = make_rng(BENCH_SEED, "e5", rng_label)
    origins = network.peer_ids()
    windows = []
    hits = probes = 0
    for index in range(num_queries):
        query = workload.sample(rng, drift=drift)
        _results, trace = network.query(origins[index % len(origins)],
                                        list(query))
        statuses = dict(trace.probes)
        full = trace.query
        if statuses.get(full) in (ProbeStatus.UNTRUNCATED,
                                  ProbeStatus.TRUNCATED):
            hits += 1
        probes += trace.probed_count
        if (index + 1) % _WINDOW == 0:
            on_demand = sum(1 for peer in network.peers()
                            for entry in peer.fragment
                            if entry.on_demand and entry.postings)
            windows.append([index + 1, hits / _WINDOW,
                            probes / _WINDOW, on_demand])
            hits = probes = 0
    return windows


@pytest.fixture(scope="module")
def e5_network(bench_corpus):
    config = AlvisConfig(qdi_activation_threshold=2,
                         qdi_maintenance_interval=40,
                         qdi_decay=0.5, qdi_eviction_threshold=0.25)
    return make_network(bench_corpus, mode="qdi", config=config)


def test_e5_qdi_warmup_and_drift(benchmark, capsys, e5_network,
                                 bench_workload):
    # Warm-up phase: stationary popular queries.
    warmup = _run_stream(e5_network, bench_workload, 200,
                         rng_label="warm")
    # Drift phase: popularity ranking rotated by 20.
    drifted = _run_stream(e5_network, bench_workload, 200, drift=20,
                          rng_label="drift")
    origin = e5_network.peer_ids()[0]
    popular = list(bench_workload.most_popular(1)[0])
    benchmark(lambda: e5_network.query(origin, popular))

    evictions = sum(peer.qdi.stats.evictions
                    for peer in e5_network.peers())
    activations = sum(peer.qdi.stats.activations
                      for peer in e5_network.peers())
    with capsys.disabled():
        print_table(
            "E5a QDI warm-up (stationary Zipf stream)",
            ["queries", "full-key hit rate", "probes/query",
             "on-demand keys"],
            warmup)
        print_table(
            "E5b QDI after popularity drift (+20 ranks)",
            ["queries", "full-key hit rate", "probes/query",
             "on-demand keys"],
            drifted)
        print(f"total activations={activations}, evictions={evictions}")

    # Shape: hit rate climbs during warm-up and recovers after drift;
    # eviction fired.
    assert warmup[-1][1] > warmup[0][1]
    assert drifted[-1][1] >= drifted[0][1] - 0.1
    assert activations > 0
    assert evictions > 0


def test_e5_probe_cost_drops_after_warmup(e5_network, bench_workload):
    """Once a popular query's key is indexed, the lattice collapses to
    (close to) a single probe."""
    origin = e5_network.peer_ids()[0]
    popular = list(bench_workload.most_popular(3)[0])
    _results, trace = e5_network.query(origin, popular)
    full_lattice = 2 ** len(trace.query) - 1
    assert trace.probed_count < full_lattice

"""E9 — Figures 2-3: the layered architecture's two-step retrieval.

Section 3: the answer is "either produced exclusively using the
information available in the distributed index... [with] good response
times" or "refined in a second step during which the query is forwarded
to the local search engines associated with the peers holding the
documents found in the first step; in this case the retrieval might be
slower (as it requires several interactions), but can benefit from the
advanced features made available by the local engines."

Series reproduced: latency estimate, messages and bytes per query for
step-1-only vs. two-step retrieval, plus the quality delta refinement
buys.  Expected shape: refinement costs extra round-trips and bytes, is
never worse in quality.
"""

from __future__ import annotations

import pytest

from repro.baselines.centralized import CentralizedEngine
from repro.eval.quality import overlap_at_k
from repro.eval.reporting import print_table


def _reference_for(network):
    documents = []
    for peer in network.peers():
        documents.extend(peer.engine.store)
    return CentralizedEngine(documents, analyzer=network.analyzer)


@pytest.fixture(scope="module")
def e9_data(bench_hdk_network, bench_workload):
    network = bench_hdk_network
    reference = _reference_for(network)
    origin = network.peer_ids()[0]
    totals = {False: [0.0, 0, 0, []], True: [0.0, 0, 0, []]}
    queries = 0
    for query in bench_workload.pool[:25]:
        truth = reference.conjunctive_doc_ids(list(query), k=10)
        if not truth:
            continue
        queries += 1
        for refine in (False, True):
            results, trace = network.query(origin, list(query),
                                           refine=refine)
            totals[refine][0] += trace.rtt_estimate
            totals[refine][1] += trace.request_messages
            totals[refine][2] += trace.bytes_sent
            totals[refine][3].append(overlap_at_k(
                [doc.doc_id for doc in results], truth, 10))
    rows = []
    for refine in (False, True):
        rtt, messages, bytes_sent, overlaps = totals[refine]
        rows.append([
            "two-step" if refine else "step 1 only",
            rtt / queries, messages / queries, bytes_sent / queries,
            sum(overlaps) / len(overlaps)])
    return rows


def test_e9_two_step_retrieval(benchmark, capsys, e9_data,
                               bench_hdk_network, bench_workload):
    origin = bench_hdk_network.peer_ids()[0]
    query = list(bench_workload.pool[0])
    benchmark(lambda: bench_hdk_network.query(origin, query,
                                              refine=True))
    with capsys.disabled():
        print_table(
            "E9 step-1-only vs two-step retrieval (per query)",
            ["mode", "rtt estimate (s)", "messages", "bytes",
             "overlap@10"],
            e9_data)


def test_e9_shape_holds(e9_data):
    step1, two_step = e9_data
    assert two_step[1] > step1[1]          # refinement is slower
    assert two_step[2] > step1[2]          # more interactions
    assert two_step[3] > step1[3]          # more bytes
    assert two_step[4] >= step1[4] - 1e-9  # never worse quality

"""E2 — the headline claim: retrieval bandwidth scalability.

"Distributed algorithms using traditional single-term indexes in
structured P2P networks generate unscalable network traffic during
retrieval [11]... the transmitted posting lists never exceed a constant
size" (Sections 1-2).

Series reproduced: bytes per multi-keyword query as the collection grows,
for (a) the single-term full-list baseline, naive and pipelined, and
(b) AlvisP2P with HDK.  Expected shape: baseline bytes grow roughly
linearly with the collection; HDK bytes stay near-constant.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED, make_network
from repro.baselines.single_term import SingleTermNetwork
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.eval.reporting import print_table
from repro.ir.analysis import Analyzer
from repro.util.stats import summarize

_SCALES = (120, 240, 480)
_NUM_PEERS = 12
_QUERIES = 15


def _frequent_queries(corpus, count=_QUERIES, size=2):
    """Multi-keyword queries over globally *frequent* terms — the regime
    where single-term intersection traffic explodes."""
    analyzer = Analyzer()
    counts = {}
    cooccur = {}
    for index in range(corpus.num_documents):
        terms = set(analyzer.analyze(
            " ".join(corpus.document_terms(index))))
        for term in terms:
            counts[term] = counts.get(term, 0) + 1
    ranked = sorted(counts, key=counts.get, reverse=True)[:30]
    queries = []
    for i, a in enumerate(ranked):
        for b in ranked[i + 1:]:
            queries.append([a, b])
            if len(queries) >= count:
                return queries
    return queries


def _corpus(num_docs):
    return SyntheticCorpus(SyntheticCorpusConfig(
        num_documents=num_docs, vocabulary_size=1200, num_topics=8,
        seed=BENCH_SEED))


def _baseline_bytes(corpus, queries, mode):
    network = SingleTermNetwork(num_peers=_NUM_PEERS, seed=BENCH_SEED)
    network.distribute_documents(corpus.documents())
    network.run_statistics_phase()
    network.build_index()
    samples = []
    for index, query in enumerate(queries):
        origin = network.peer_ids()[index % _NUM_PEERS]
        trace = network.query(origin, query, mode=mode)
        samples.append(trace.bytes_sent)
    return summarize(samples)


def _alvis_bytes(corpus, queries):
    network = make_network(corpus, num_peers=_NUM_PEERS, mode="hdk")
    samples = []
    for index, query in enumerate(queries):
        origin = network.peer_ids()[index % _NUM_PEERS]
        _results, trace = network.query(origin, query)
        samples.append(trace.bytes_sent)
    return summarize(samples)


@pytest.fixture(scope="module")
def e2_series():
    rows = []
    for num_docs in _SCALES:
        corpus = _corpus(num_docs)
        queries = _frequent_queries(corpus)
        fetch_all = _baseline_bytes(corpus, queries, "fetch_all")
        pipelined = _baseline_bytes(corpus, queries, "pipelined")
        bloom = _baseline_bytes(corpus, queries, "bloom")
        hdk = _alvis_bytes(corpus, queries)
        rows.append([num_docs, fetch_all["mean"], pipelined["mean"],
                     bloom["mean"], hdk["mean"],
                     fetch_all["mean"] / max(1.0, hdk["mean"])])
    return rows


def test_e2_bandwidth_vs_collection_size(benchmark, capsys, e2_series,
                                         bench_corpus, bench_workload,
                                         bench_hdk_network):
    origin = bench_hdk_network.peer_ids()[0]
    query = list(bench_workload.pool[0])
    benchmark(lambda: bench_hdk_network.query(origin, query))

    with capsys.disabled():
        print_table(
            "E2 bytes/query vs collection size (frequent 2-term queries)",
            ["docs", "single-term fetch-all", "single-term pipelined",
             "single-term bloom", "alvis HDK", "baseline/HDK ratio"],
            e2_series)
        first, last = e2_series[0], e2_series[-1]
        growth_baseline = last[1] / first[1]
        growth_hdk = last[4] / max(1.0, first[4])
        print(f"growth x{_SCALES[-1] // _SCALES[0]} docs: "
              f"baseline {growth_baseline:.2f}x, HDK {growth_hdk:.2f}x")


def test_e2_shape_holds(e2_series):
    """The reproduction's acceptance check: every baseline variant grows
    with the collection (Bloom included — Zhang & Suel's constant-factor
    result), HDK stays bounded and wins at every scale."""
    first, last = e2_series[0], e2_series[-1]
    assert last[1] / first[1] > 1.8            # fetch-all grows
    assert last[3] / first[3] > 1.5            # bloom grows too
    assert last[4] / max(1.0, first[4]) < 1.6  # HDK near-constant
    for row in e2_series:
        assert row[1] > row[4]                 # fetch-all loses
        assert row[3] > row[4]                 # bloom loses too

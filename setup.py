"""Legacy setup shim.

The offline environment has setuptools but not `wheel`, so PEP 660
editable installs fail; this shim lets `pip install -e .` use the legacy
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of AlvisP2P: scalable peer-to-peer text "
                 "retrieval in a structured P2P network (VLDB 2008)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    # No hard dependencies: the simulator and the reference scoring
    # path are pure stdlib.  numpy only accelerates the owner-side BM25
    # (bitwise-identical results; see repro/util/npcompat.py).
    extras_require={
        "fast": ["numpy"],
    },
)
